"""Conversion of automata back into regular expressions (state elimination).

The library mostly manipulates automata, but designers read *expressions*:
Figure 4 presents the perfect typing as DTD rules, and the examples print
the typings they compute.  :func:`nfa_to_regex` implements the classical
GNFA state-elimination algorithm together with light algebraic
simplifications so that, e.g., the union of the legal local automata of
Example 10 prints as ``(b, c)*, b?`` rather than as a transition table.

The translation is exact (a property test checks that translating back gives
an equivalent automaton) but not guaranteed to be minimal -- producing short
expressions is a hard problem in itself (cf. the succinctness results of
Proposition 3.6).
"""

from __future__ import annotations

from typing import Optional

from repro.automata.dfa import minimal_dfa
from repro.automata.nfa import EPSILON, NFA
from repro.automata.regex import (
    Concat,
    EmptySet,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
)


# --------------------------------------------------------------------------- #
# smart constructors with light simplification
# --------------------------------------------------------------------------- #


def _is_empty(regex: Regex) -> bool:
    return isinstance(regex, EmptySet)


def _is_epsilon(regex: Regex) -> bool:
    return isinstance(regex, Epsilon)


def simplify_union(left: Regex, right: Regex) -> Regex:
    """``left + right`` with the obvious identities applied."""
    if _is_empty(left):
        return right
    if _is_empty(right):
        return left
    if left == right:
        return left
    # ε + r* = r*,  ε + r+ = r*,  ε + r? = r?
    if _is_epsilon(left):
        left, right = right, left
    if _is_epsilon(right):
        if isinstance(left, (Star, Opt)):
            return left
        if isinstance(left, Plus):
            return Star(left.inner)
        if left.nullable():
            return left
        return Opt(left)
    parts: list[Regex] = []
    for part in (left, right):
        if isinstance(part, Union):
            parts.extend(part.parts)
        else:
            parts.append(part)
    unique: list[Regex] = []
    for part in parts:
        if part not in unique:
            unique.append(part)
    return unique[0] if len(unique) == 1 else Union(tuple(unique))


def simplify_concat(left: Regex, right: Regex) -> Regex:
    """``left · right`` with the obvious identities applied."""
    if _is_empty(left) or _is_empty(right):
        return EmptySet()
    if _is_epsilon(left):
        return right
    if _is_epsilon(right):
        return left
    # r* · r = r · r* = r+
    if isinstance(left, Star) and left.inner == right:
        return Plus(right)
    if isinstance(right, Star) and right.inner == left:
        return Plus(left)
    parts: list[Regex] = []
    for part in (left, right):
        if isinstance(part, Concat):
            parts.extend(part.parts)
        else:
            parts.append(part)
    return Concat(tuple(parts))


def simplify_star(inner: Regex) -> Regex:
    """``inner*`` with the obvious identities applied."""
    if _is_empty(inner) or _is_epsilon(inner):
        return Epsilon()
    if isinstance(inner, (Star, Plus)):
        return Star(inner.inner)
    if isinstance(inner, Opt):
        return Star(inner.inner)
    return Star(inner)


# --------------------------------------------------------------------------- #
# state elimination
# --------------------------------------------------------------------------- #


def nfa_to_regex(nfa: NFA, canonical: bool = True) -> Regex:
    """Translate an automaton into an equivalent regular expression.

    With ``canonical=True`` (the default) the automaton is first minimised,
    which usually yields noticeably shorter expressions.
    """
    source = minimal_dfa(nfa).to_nfa() if canonical else nfa.remove_epsilon().trim()
    if source.is_empty_language():
        return EmptySet()

    start = "__gnfa_start__"
    end = "__gnfa_end__"
    # edges[(p, q)] = regex labelling the edge from p to q
    edges: dict[tuple, Regex] = {}

    def add_edge(src, dst, regex: Regex) -> None:
        if (src, dst) in edges:
            edges[(src, dst)] = simplify_union(edges[(src, dst)], regex)
        else:
            edges[(src, dst)] = regex

    add_edge(start, source.initial, Epsilon())
    for final in source.finals:
        add_edge(final, end, Epsilon())
    for src, label, dst in source.iter_transitions():
        add_edge(src, dst, Epsilon() if label == EPSILON else Sym(label))

    remaining = set(source.states)

    def degree(state) -> int:
        return sum(1 for (p, q) in edges if p == state or q == state)

    while remaining:
        # Eliminate low-degree states first; this keeps expressions small.
        state = min(remaining, key=lambda s: (degree(s), repr(s)))
        remaining.discard(state)
        loop = edges.pop((state, state), EmptySet())
        loop_star = simplify_star(loop) if not _is_empty(loop) else Epsilon()
        incoming = [(p, regex) for (p, q), regex in edges.items() if q == state and p != state]
        outgoing = [(q, regex) for (p, q), regex in edges.items() if p == state and q != state]
        for p, _ in incoming:
            edges.pop((p, state), None)
        for q, _ in outgoing:
            edges.pop((state, q), None)
        for p, regex_in in incoming:
            for q, regex_out in outgoing:
                through = simplify_concat(simplify_concat(regex_in, loop_star), regex_out)
                add_edge(p, q, through)

    return edges.get((start, end), EmptySet())


def nfa_to_regex_text(nfa: NFA, max_size: Optional[int] = None, canonical: bool = True) -> Optional[str]:
    """A textual expression for ``[nfa]``, or ``None`` when the automaton is too large.

    ``max_size`` bounds the size of the automaton that will be translated;
    callers that only want a *readable* rendering (e.g. ``ContentModel``)
    pass a small bound and fall back to another description otherwise.
    """
    if max_size is not None and nfa.size > max_size:
        return None
    return str(nfa_to_regex(nfa, canonical=canonical))
