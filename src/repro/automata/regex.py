"""Regular expressions in the paper's notation (``nRE``, Section 2.1.2).

The abstract syntax is exactly the paper's::

    r ::= ε | ∅ | a | (r · r) | (r + r) | r? | r+ | r*

Two concrete notations are supported by :func:`parse_regex`:

* **character mode** (default) -- every alphanumeric character is a symbol,
  which matches the paper's examples literally: ``"a*bc*"``, ``"(ab)+"``,
  ``"ab + ba"``, ``"af?ba+"``.
* **name mode** (``names=True``) -- symbols are identifiers, concatenation is
  written with commas or whitespace, which matches DTD content models such
  as ``"country, Good, (index | value, year)"``.

In both modes union can be written ``|`` or binary ``+`` (the paper uses the
latter); a ``+`` is parsed as the postfix "one or more" operator exactly when
it is not followed by the start of another expression, which resolves the
paper's overloading of ``+`` the way a human reader does.

Two standard translations to automata are provided: Thompson's construction
(:func:`regex_to_nfa`, linear-size, with epsilon transitions) and the
Glushkov / position automaton (:func:`glushkov_nfa`, epsilon-free), the
latter being the basis of the deterministic-expression test
(:func:`is_deterministic_regex`, Brüggemann-Klein & Wood [11]).
"""

from __future__ import annotations

import re as _re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Optional, Union as TypingUnion

from repro.errors import RegexSyntaxError
from repro.automata.nfa import NFA, Symbol
from repro.automata import operations as ops


# --------------------------------------------------------------------------- #
# abstract syntax
# --------------------------------------------------------------------------- #


class Regex:
    """Base class of the regular-expression abstract syntax tree."""

    def nullable(self) -> bool:
        """Does the language contain the empty word?"""
        raise NotImplementedError

    def symbols(self) -> frozenset[Symbol]:
        """The set of symbols occurring in the expression."""
        raise NotImplementedError

    def to_nfa(self) -> NFA:
        """Thompson-style translation into an NFA."""
        raise NotImplementedError

    # The AST classes are dataclasses; equality and hashing are structural.

    def __str__(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class EmptySet(Regex):
    """The empty language ``∅``."""

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[Symbol]:
        return frozenset()

    def to_nfa(self) -> NFA:
        return NFA.empty_language()

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty word."""

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[Symbol]:
        return frozenset()

    def to_nfa(self) -> NFA:
        return NFA.epsilon_language()

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Sym(Regex):
    """A single alphabet symbol."""

    name: Symbol

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[Symbol]:
        return frozenset({self.name})

    def to_nfa(self) -> NFA:
        return NFA.symbol(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of two or more expressions."""

    parts: tuple[Regex, ...]

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def symbols(self) -> frozenset[Symbol]:
        result: frozenset[Symbol] = frozenset()
        for part in self.parts:
            result |= part.symbols()
        return result

    def to_nfa(self) -> NFA:
        return ops.concat(*[part.to_nfa() for part in self.parts])

    def __str__(self) -> str:
        rendered = []
        for part in self.parts:
            text = str(part)
            if isinstance(part, Union):
                text = f"({text})"
            rendered.append(text)
        return ", ".join(rendered)


@dataclass(frozen=True)
class Union(Regex):
    """Union (the paper's ``r + r``, W3C's ``|``)."""

    parts: tuple[Regex, ...]

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def symbols(self) -> frozenset[Symbol]:
        result: frozenset[Symbol] = frozenset()
        for part in self.parts:
            result |= part.symbols()
        return result

    def to_nfa(self) -> NFA:
        return ops.union(*[part.to_nfa() for part in self.parts])

    def __str__(self) -> str:
        return " | ".join(str(part) for part in self.parts)


def _wrap(part: Regex) -> str:
    text = str(part)
    if isinstance(part, (Union, Concat)):
        return f"({text})"
    return text


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star ``r*``."""

    inner: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[Symbol]:
        return self.inner.symbols()

    def to_nfa(self) -> NFA:
        return ops.kleene_star(self.inner.to_nfa())

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True)
class Plus(Regex):
    """One or more repetitions ``r+``."""

    inner: Regex

    def nullable(self) -> bool:
        return self.inner.nullable()

    def symbols(self) -> frozenset[Symbol]:
        return self.inner.symbols()

    def to_nfa(self) -> NFA:
        return ops.plus(self.inner.to_nfa())

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True)
class Opt(Regex):
    """Zero or one occurrence ``r?``."""

    inner: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[Symbol]:
        return self.inner.symbols()

    def to_nfa(self) -> NFA:
        return ops.optional(self.inner.to_nfa())

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}?"


def concat_of(parts: Sequence[Regex]) -> Regex:
    """Smart constructor flattening nested concatenations."""
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        elif isinstance(part, Epsilon):
            continue
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union_of(parts: Sequence[Regex]) -> Regex:
    """Smart constructor flattening nested unions."""
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Union):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EmptySet()
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #


_NAME_TOKEN = _re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")
_EPSILON_WORDS = {"ε", "eps", "epsilon", "#eps"}
_EMPTY_WORDS = {"∅", "empty", "#empty"}
_OPERATORS = set("()|+*?,")


def _tokenize(text: str, names: bool) -> list[str]:
    tokens: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _OPERATORS:
            tokens.append(char)
            index += 1
            continue
        if char in "ε∅":
            tokens.append(char)
            index += 1
            continue
        if names:
            match = _NAME_TOKEN.match(text, index)
            if match:
                tokens.append(match.group(0))
                index = match.end()
                continue
            if char == "#":
                match = _re.compile(r"#\w+").match(text, index)
                if match:
                    tokens.append(match.group(0))
                    index = match.end()
                    continue
            raise RegexSyntaxError(f"unexpected character {char!r} at position {index} in {text!r}")
        if char.isalnum() or char == "#":
            tokens.append(char)
            index += 1
            continue
        raise RegexSyntaxError(f"unexpected character {char!r} at position {index} in {text!r}")
    return tokens


def _is_atom_start(token: Optional[str]) -> bool:
    if token is None:
        return False
    if token in {"(",} or token in _EPSILON_WORDS or token in _EMPTY_WORDS:
        return True
    return token not in _OPERATORS


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[str], text: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._text = text

    def peek(self, offset: int = 0) -> Optional[str]:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def pop(self) -> str:
        token = self.peek()
        if token is None:
            raise RegexSyntaxError(f"unexpected end of expression in {self._text!r}")
        self._pos += 1
        return token

    def parse(self) -> Regex:
        if not self._tokens:
            return Epsilon()
        expr = self.parse_union()
        if self.peek() is not None:
            raise RegexSyntaxError(
                f"unexpected token {self.peek()!r} at position {self._pos} in {self._text!r}"
            )
        return expr

    def parse_union(self) -> Regex:
        parts = [self.parse_concat()]
        while self.peek() in {"|", "+"}:
            self.pop()
            parts.append(self.parse_concat())
        return union_of(parts)

    def parse_concat(self) -> Regex:
        parts = [self.parse_postfix()]
        while True:
            token = self.peek()
            if token == ",":
                self.pop()
                parts.append(self.parse_postfix())
            elif _is_atom_start(token):
                parts.append(self.parse_postfix())
            else:
                break
        return concat_of(parts)

    def parse_postfix(self) -> Regex:
        expr = self.parse_atom()
        while True:
            token = self.peek()
            if token == "*":
                self.pop()
                expr = Star(expr)
            elif token == "?":
                self.pop()
                expr = Opt(expr)
            elif token == "+" and not _is_atom_start(self.peek(1)):
                self.pop()
                expr = Plus(expr)
            else:
                break
        return expr

    def parse_atom(self) -> Regex:
        token = self.pop()
        if token == "(":
            expr = self.parse_union()
            closing = self.pop()
            if closing != ")":
                raise RegexSyntaxError(f"expected ')' but found {closing!r} in {self._text!r}")
            return expr
        if token in _EPSILON_WORDS:
            return Epsilon()
        if token in _EMPTY_WORDS:
            return EmptySet()
        if token in _OPERATORS:
            raise RegexSyntaxError(f"unexpected operator {token!r} in {self._text!r}")
        return Sym(token)


def parse_regex(text: str, names: bool = False) -> Regex:
    """Parse ``text`` into a :class:`Regex`.

    >>> str(parse_regex("a*bc*"))
    'a*, b, c*'
    >>> str(parse_regex("ab + ba"))
    'a, b | b, a'
    >>> str(parse_regex("country, Good, (index | value, year)", names=True))
    'country, Good, (index | value, year)'
    """
    # Treat the special PCDATA token of W3C DTDs as "leaf only" = epsilon.
    cleaned = text.replace("#PCDATA", "ε")
    tokens = _tokenize(cleaned, names)
    return _Parser(tokens, text).parse()


# --------------------------------------------------------------------------- #
# translations to automata
# --------------------------------------------------------------------------- #


def regex_to_nfa(expression: TypingUnion[str, Regex], names: bool = False) -> NFA:
    """Translate a regular expression (or its textual form) into an NFA."""
    regex = parse_regex(expression, names=names) if isinstance(expression, str) else expression
    return regex.to_nfa()


def ensure_nfa(language: TypingUnion[str, Regex, NFA, "object"], names: bool = False) -> NFA:
    """Coerce ``language`` into an :class:`NFA`.

    Accepts automata (NFA/DFA), :class:`Regex` values and regular-expression
    text.  This is the convenience layer used by the public API so that
    examples can write content models as plain strings.
    """
    from repro.automata.dfa import DFA

    if isinstance(language, NFA):
        return language
    if isinstance(language, DFA):
        return language.to_nfa()
    if isinstance(language, Regex):
        return language.to_nfa()
    if isinstance(language, str):
        return regex_to_nfa(language, names=names)
    raise TypeError(f"cannot interpret {language!r} as a regular language")


# --------------------------------------------------------------------------- #
# Glushkov (position) automaton and deterministic expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _Linearised:
    """First/last/follow data of the linearised (position-annotated) expression."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]
    follow: dict[int, frozenset[int]]
    symbol_of: dict[int, Symbol]


def _linearise(regex: Regex, counter: Iterator[int]) -> _Linearised:
    if isinstance(regex, EmptySet):
        return _Linearised(False, frozenset(), frozenset(), {}, {})
    if isinstance(regex, Epsilon):
        return _Linearised(True, frozenset(), frozenset(), {}, {})
    if isinstance(regex, Sym):
        position = next(counter)
        return _Linearised(False, frozenset({position}), frozenset({position}), {position: frozenset()}, {position: regex.name})
    if isinstance(regex, Concat):
        parts = [_linearise(part, counter) for part in regex.parts]
        symbol_of: dict[int, Symbol] = {}
        follow: dict[int, frozenset[int]] = {}
        for part in parts:
            symbol_of.update(part.symbol_of)
            follow.update(part.follow)
        nullable = all(part.nullable for part in parts)
        first: set[int] = set()
        for part in parts:
            first |= part.first
            if not part.nullable:
                break
        last: set[int] = set()
        for part in reversed(parts):
            last |= part.last
            if not part.nullable:
                break
        # follow links across the concatenation: the last positions of each
        # prefix connect to the first positions of the next non-skipped part.
        for index in range(len(parts) - 1):
            lasts: set[int] = set(parts[index].last)
            # positions of earlier parts can also be "last of the prefix" when
            # the parts in between are nullable
            for back in range(index - 1, -1, -1):
                if all(parts[k].nullable for k in range(back + 1, index + 1)):
                    lasts |= parts[back].last
                else:
                    break
            nexts = parts[index + 1].first
            for position in lasts:
                follow[position] = follow.get(position, frozenset()) | nexts
        return _Linearised(nullable, frozenset(first), frozenset(last), follow, symbol_of)
    if isinstance(regex, Union):
        parts = [_linearise(part, counter) for part in regex.parts]
        symbol_of = {}
        follow = {}
        first: set[int] = set()
        last: set[int] = set()
        for part in parts:
            symbol_of.update(part.symbol_of)
            follow.update(part.follow)
            first |= part.first
            last |= part.last
        nullable = any(part.nullable for part in parts)
        return _Linearised(nullable, frozenset(first), frozenset(last), follow, symbol_of)
    if isinstance(regex, (Star, Plus)):
        inner = _linearise(regex.inner, counter)
        follow = dict(inner.follow)
        for position in inner.last:
            follow[position] = follow.get(position, frozenset()) | inner.first
        nullable = True if isinstance(regex, Star) else inner.nullable
        return _Linearised(nullable, inner.first, inner.last, follow, inner.symbol_of)
    if isinstance(regex, Opt):
        inner = _linearise(regex.inner, counter)
        return _Linearised(True, inner.first, inner.last, dict(inner.follow), inner.symbol_of)
    raise TypeError(f"unknown regex node {regex!r}")


def _positions(regex: Regex) -> _Linearised:
    counter = iter(range(1, 10**9))
    return _linearise(regex, counter)


def glushkov_nfa(expression: TypingUnion[str, Regex], names: bool = False) -> NFA:
    """The Glushkov (position) automaton of the expression.

    It is epsilon-free, has one state per symbol occurrence plus an initial
    state, and is deterministic exactly when the expression is a ``dRE``.
    """
    regex = parse_regex(expression, names=names) if isinstance(expression, str) else expression
    data = _positions(regex)
    initial = 0
    states = {initial} | set(data.symbol_of)
    transitions: dict[int, dict[Symbol, set[int]]] = {}
    for position in data.first:
        transitions.setdefault(initial, {}).setdefault(data.symbol_of[position], set()).add(position)
    for source, targets in data.follow.items():
        for target in targets:
            transitions.setdefault(source, {}).setdefault(data.symbol_of[target], set()).add(target)
    finals = set(data.last)
    if data.nullable:
        finals.add(initial)
    alphabet = set(data.symbol_of.values()) | regex.symbols()
    return NFA(states, alphabet, transitions, initial, finals)


def is_deterministic_regex(expression: TypingUnion[str, Regex], names: bool = False) -> bool:
    """Is the expression a *deterministic* regular expression (a ``dRE``)?

    Per Brüggemann-Klein & Wood, an expression is deterministic iff its
    Glushkov automaton is deterministic, i.e. no state has two outgoing
    transitions with the same symbol.
    """
    regex = parse_regex(expression, names=names) if isinstance(expression, str) else expression
    if isinstance(regex, EmptySet):
        return True
    automaton = glushkov_nfa(regex)
    for _state, row in automaton.transitions.items():
        for _symbol, targets in row.items():
            if len(targets) > 1:
                return False
    return True
