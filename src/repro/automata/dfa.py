"""Deterministic finite automata (the paper's ``dFA``) and subset construction.

A :class:`DFA` keeps a *partial* transition function; :meth:`DFA.completed`
adds an explicit sink state when a total function is required (e.g. before
complementation).  :meth:`DFA.minimized` routes through Hopcroft's
partition refinement in :mod:`repro.automata.kernel`, which is what the
one-unambiguity test of :mod:`repro.automata.determinism` and the size
accounting of Table 2 rely on; :meth:`DFA.minimized_moore` and
:meth:`DFA.from_nfa_legacy` keep the original Moore/frozenset
implementations as differential-testing oracles.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Optional

from repro.automata.nfa import EPSILON, NFA, Symbol, as_word

State = Any

_SINK = "__sink__"


class DFA:
    """A deterministic finite automaton with a (possibly partial) transition function."""

    __slots__ = ("states", "alphabet", "transitions", "initial", "finals")

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple[State, Symbol], State],
        initial: State,
        finals: Iterable[State],
    ) -> None:
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.transitions = dict(transitions)
        self.initial = initial
        self.finals = frozenset(finals)
        self._validate()

    def _validate(self) -> None:
        if self.initial not in self.states:
            raise ValueError("initial state must be a state")
        if not self.finals <= self.states:
            raise ValueError("final states must be states")
        for (src, symbol), dst in self.transitions.items():
            if src not in self.states or dst not in self.states:
                raise ValueError("transition endpoints must be states")
            if symbol == EPSILON:
                raise ValueError("a DFA cannot have epsilon transitions")
            if symbol not in self.alphabet:
                raise ValueError(f"symbol {symbol!r} not in alphabet")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "DFA":
        """Subset construction.  Only reachable subset states are generated.

        Routed through the bitset kernel
        (:func:`repro.automata.kernel.determinize_nfa`); the result is
        state-for-state identical to :meth:`from_nfa_legacy`, which remains
        the differential-testing oracle.
        """
        from repro.automata.kernel.determinize import determinize_nfa

        return determinize_nfa(nfa)

    @classmethod
    def from_nfa_legacy(cls, nfa: NFA) -> "DFA":
        """The original frozenset-of-frozensets subset construction (oracle)."""
        start = nfa.epsilon_closure({nfa.initial})
        states = {start}
        transitions: dict[tuple[frozenset, Symbol], frozenset] = {}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for symbol in nfa.alphabet:
                nxt = nfa.step(current, symbol)
                if not nxt:
                    continue
                transitions[(current, symbol)] = nxt
                if nxt not in states:
                    states.add(nxt)
                    queue.append(nxt)
        finals = {subset for subset in states if subset & nfa.finals}
        return cls(states, nfa.alphabet, transitions, start, finals)

    # ------------------------------------------------------------------ #
    # runs
    # ------------------------------------------------------------------ #

    def delta(self, state: State, symbol: Symbol) -> Optional[State]:
        """The transition function; ``None`` when undefined (implicit sink)."""
        return self.transitions.get((state, symbol))

    def run(self, word: str | Sequence[Symbol]) -> Optional[State]:
        """The state reached after reading ``word``, or ``None`` if the run dies."""
        current: Optional[State] = self.initial
        for symbol in as_word(word):
            if current is None:
                return None
            current = self.delta(current, symbol)
        return current

    def accepts(self, word: str | Sequence[Symbol]) -> bool:
        state = self.run(word)
        return state is not None and state in self.finals

    def __contains__(self, word: str | Sequence[Symbol]) -> bool:
        return self.accepts(word)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def completed(self, alphabet: Optional[Iterable[Symbol]] = None) -> "DFA":
        """Return an equivalent DFA with a total transition function.

        A fresh sink state is added if any transition is missing.  The
        optional ``alphabet`` argument allows completing over a larger
        alphabet, which is what complementation relative to a shared alphabet
        requires.
        """
        symbols = frozenset(alphabet) | self.alphabet if alphabet is not None else self.alphabet
        missing = [
            (state, symbol)
            for state in self.states
            for symbol in symbols
            if (state, symbol) not in self.transitions
        ]
        if not missing:
            return DFA(self.states, symbols, self.transitions, self.initial, self.finals)
        sink = _SINK
        while sink in self.states:
            sink = sink + "_"
        states = set(self.states) | {sink}
        transitions = dict(self.transitions)
        for state, symbol in missing:
            transitions[(state, symbol)] = sink
        for symbol in symbols:
            transitions[(sink, symbol)] = sink
        return DFA(states, symbols, transitions, self.initial, self.finals)

    def complemented(self, alphabet: Optional[Iterable[Symbol]] = None) -> "DFA":
        """The complement automaton ``A̅`` defining ``Sigma* - [A]``."""
        total = self.completed(alphabet)
        return DFA(
            total.states,
            total.alphabet,
            total.transitions,
            total.initial,
            total.states - total.finals,
        )

    def reachable_states(self) -> frozenset[State]:
        seen = {self.initial}
        queue = deque([self.initial])
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                nxt = self.delta(state, symbol)
                if nxt is not None and nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return frozenset(seen)

    def trimmed(self) -> "DFA":
        """Restrict to reachable states (keeping the initial state)."""
        keep = self.reachable_states()
        transitions = {
            (src, symbol): dst
            for (src, symbol), dst in self.transitions.items()
            if src in keep and dst in keep
        }
        return DFA(keep, self.alphabet, transitions, self.initial, self.finals & keep)

    def minimized(self) -> "DFA":
        """Minimisation via Hopcroft's O(n·|Σ|·log n) partition refinement.

        The result is the canonical minimal *complete* DFA of the language,
        trimmed of the sink state when the sink is not needed to keep the
        transition function meaningful (i.e. the returned automaton is the
        minimal partial DFA: every state is reachable and co-reachable,
        except that the initial state is always kept).  Hopcroft and Moore
        compute the same Myhill-Nerode partition, so the output is identical
        to :meth:`minimized_moore` (the legacy oracle) object-for-object.
        """
        from repro.automata.kernel.hopcroft import hopcroft_partition

        total = self.completed().trimmed()
        return total._lower_partition(hopcroft_partition(total))

    def minimized_moore(self) -> "DFA":
        """Moore partition-refinement minimisation (the legacy oracle)."""
        total = self.completed().trimmed()
        # initial partition: finals vs non-finals
        partition: list[frozenset[State]] = []
        if total.finals:
            partition.append(frozenset(total.finals))
        non_finals = total.states - total.finals
        if non_finals:
            partition.append(frozenset(non_finals))
        symbols = sorted(total.alphabet)

        changed = True
        while changed:
            changed = False
            block_index = {state: index for index, block in enumerate(partition) for state in block}
            new_partition: list[frozenset[State]] = []
            for block in partition:
                signature_groups: dict[tuple, set[State]] = {}
                for state in block:
                    signature = tuple(
                        block_index[total.delta(state, symbol)] for symbol in symbols
                    )
                    signature_groups.setdefault(signature, set()).add(state)
                if len(signature_groups) > 1:
                    changed = True
                new_partition.extend(frozenset(group) for group in signature_groups.values())
            partition = new_partition
        return total._lower_partition(partition)

    def _lower_partition(self, partition: Sequence[frozenset[State]]) -> "DFA":
        """Build the minimal DFA from a Myhill-Nerode partition of ``self``.

        ``self`` must be complete and trimmed.  Block representatives and
        the final sink-dropping are shared by the Hopcroft and Moore paths,
        so both produce the same automaton.
        """
        symbols = sorted(self.alphabet)
        representative = {block: min(block, key=repr) for block in partition}
        state_to_block = {state: block for block in partition for state in block}
        states = set(representative.values())
        transitions = {}
        for block in partition:
            src = representative[block]
            sample = next(iter(block))
            for symbol in symbols:
                dst_state = self.delta(sample, symbol)
                transitions[(src, symbol)] = representative[state_to_block[dst_state]]
        finals = {representative[state_to_block[state]] for state in self.finals}
        minimal = DFA(states, self.alphabet, transitions, representative[state_to_block[self.initial]], finals)
        return minimal._drop_sink()

    def _drop_sink(self) -> "DFA":
        """Remove a non-final state with no path to a final state (the sink), if any."""
        co_reachable = self.to_nfa().coreachable_states()
        keep = (self.reachable_states() & co_reachable) | {self.initial}
        transitions = {
            (src, symbol): dst
            for (src, symbol), dst in self.transitions.items()
            if src in keep and dst in keep
        }
        return DFA(keep, self.alphabet, transitions, self.initial, self.finals & keep)

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA (every dFA is an nFA, Section 2.1.2)."""
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        for (src, symbol), dst in self.transitions.items():
            transitions.setdefault(src, {}).setdefault(symbol, set()).add(dst)
        return NFA(self.states, self.alphabet, transitions, self.initial, self.finals)

    # ------------------------------------------------------------------ #
    # measures
    # ------------------------------------------------------------------ #

    def transition_count(self) -> int:
        return len(self.transitions)

    @property
    def size(self) -> int:
        """Size measure = number of states plus number of transitions."""
        return len(self.states) + len(self.transitions)

    def is_complete(self) -> bool:
        return all((state, symbol) in self.transitions for state in self.states for symbol in self.alphabet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DFA(states={len(self.states)}, transitions={len(self.transitions)})"


def minimal_dfa(nfa: NFA) -> DFA:
    """Convenience: subset construction followed by minimisation."""
    return DFA.from_nfa(nfa.remove_epsilon()).minimized()


def minimal_state_count(nfa: NFA) -> int:
    """Number of states of the minimal complete DFA for ``[nfa]``.

    This is the *state complexity* measure used when the benchmarks report
    the worst-case sizes of Table 2 (the paper cites Yu's state-complexity
    results [22, 43]).
    """
    return len(minimal_dfa(nfa).completed().trimmed().states)
