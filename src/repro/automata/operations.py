"""Rational and boolean operations on automata (Section 2.1.2).

The paper combines ``nFA``s with concatenation, union, intersection,
complement and difference (``A1 · A2``, ``A1 ∪ A2``, ``A1 ∩ A2``,
``A1 − A2``, ``A̅``); this module provides all of them, plus the Kleene
closures used by the regular-expression translation.

All functions return fresh automata and never mutate their inputs.  Input
state sets are disjointified automatically, so callers can combine automata
that happen to share state names (the paper assumes disjoint state sets
implicitly, e.g. in Algorithm 1).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.dfa import DFA
from repro.automata.nfa import EPSILON, NFA, State, Symbol


def _tagged(nfa: NFA, tag: int) -> NFA:
    """Rename every state of ``nfa`` to ``(tag, state)`` to guarantee disjointness."""
    return nfa.map_states({state: (tag, state) for state in nfa.states})


def union(*automata: NFA) -> NFA:
    """The automaton defining ``[A1] ∪ ... ∪ [Ak]`` (the paper's ``∪A``)."""
    if not automata:
        return NFA.empty_language()
    if len(automata) == 1:
        return automata[0]
    parts = [_tagged(nfa, index) for index, nfa in enumerate(automata)]
    initial = ("union", "start")
    states = {initial}
    alphabet: set[Symbol] = set()
    transitions: dict[State, dict[Symbol, set[State]]] = {initial: {EPSILON: set()}}
    finals: set[State] = set()
    for part in parts:
        states |= part.states
        alphabet |= part.alphabet
        finals |= part.finals
        transitions[initial][EPSILON].add(part.initial)
        for src, label, dst in part.iter_transitions():
            transitions.setdefault(src, {}).setdefault(label, set()).add(dst)
    return NFA(states, alphabet, transitions, initial, finals)


def concat(*automata: NFA) -> NFA:
    """The automaton defining ``[A1] ◦ [A2] ◦ ... ◦ [Ak]``."""
    if not automata:
        return NFA.epsilon_language()
    if len(automata) == 1:
        return automata[0]
    parts = [_tagged(nfa, index) for index, nfa in enumerate(automata)]
    states: set[State] = set()
    alphabet: set[Symbol] = set()
    transitions: dict[State, dict[Symbol, set[State]]] = {}
    for part in parts:
        states |= part.states
        alphabet |= part.alphabet
        for src, label, dst in part.iter_transitions():
            transitions.setdefault(src, {}).setdefault(label, set()).add(dst)
    for left, right in zip(parts, parts[1:]):
        for final in left.finals:
            transitions.setdefault(final, {}).setdefault(EPSILON, set()).add(right.initial)
    return NFA(states, alphabet, transitions, parts[0].initial, parts[-1].finals)


def kleene_star(nfa: NFA) -> NFA:
    """The automaton defining ``[A]*``."""
    part = _tagged(nfa, 0)
    initial = ("star", "start")
    states = set(part.states) | {initial}
    transitions: dict[State, dict[Symbol, set[State]]] = {initial: {EPSILON: {part.initial}}}
    for src, label, dst in part.iter_transitions():
        transitions.setdefault(src, {}).setdefault(label, set()).add(dst)
    for final in part.finals:
        transitions.setdefault(final, {}).setdefault(EPSILON, set()).add(initial)
    return NFA(states, part.alphabet, transitions, initial, {initial} | set(part.finals))


def plus(nfa: NFA) -> NFA:
    """The automaton defining ``[A]+`` (one or more repetitions)."""
    return concat(nfa, kleene_star(nfa))


def optional(nfa: NFA) -> NFA:
    """The automaton defining ``[A] ∪ {ε}`` (the paper's ``r?``)."""
    return union(nfa, NFA.epsilon_language(nfa.alphabet))


def reverse(nfa: NFA) -> NFA:
    """The automaton defining the mirror image of ``[A]``."""
    part = _tagged(nfa.remove_epsilon(), 0)
    new_initial = ("reverse", "start")
    states = set(part.states) | {new_initial}
    transitions: dict[State, dict[Symbol, set[State]]] = {
        new_initial: {EPSILON: set(part.finals)}
    }
    for src, label, dst in part.iter_transitions():
        transitions.setdefault(dst, {}).setdefault(label, set()).add(src)
    return NFA(states, part.alphabet, transitions, new_initial, {part.initial})


def intersection(*automata: NFA) -> NFA:
    """The automaton defining ``[A1] ∩ ... ∩ [Ak]`` (the paper's ``∩A``).

    Uses the synchronous product of the epsilon-free automata, explored on
    the integer/bitset kernel
    (:func:`repro.automata.kernel.product_intersection`); the pair-state
    naming matches the legacy :func:`_binary_intersection` oracle exactly.
    """
    from repro.automata.kernel.inclusion import product_intersection

    if not automata:
        raise ValueError("intersection of zero automata is undefined")
    if len(automata) == 1:
        return automata[0]
    result = automata[0]
    for other in automata[1:]:
        result = product_intersection(result, other)
    return result


def intersects(left: NFA, right: NFA) -> bool:
    """Decide ``[left] ∩ [right] ≠ ∅`` without materialising the product.

    The kernel explores the synchronous product pair-by-pair and stops at
    the first jointly accepting pair, so deciding non-disjointness never
    pays for the full product the way ``intersection(...).is_empty_language()``
    does.
    """
    from repro.automata.kernel.inclusion import nfa_intersects

    return nfa_intersects(left, right)


def _binary_intersection(left: NFA, right: NFA) -> NFA:
    """The legacy object-level synchronous product (differential oracle)."""
    a = left.remove_epsilon()
    b = right.remove_epsilon()
    alphabet = a.alphabet & b.alphabet
    initial = (a.initial, b.initial)
    states = {initial}
    transitions: dict[State, dict[Symbol, set[State]]] = {}
    stack = [initial]
    while stack:
        src_a, src_b = current = stack.pop()
        for symbol in alphabet:
            targets_a = a.successors(src_a, symbol)
            targets_b = b.successors(src_b, symbol)
            for dst_a in targets_a:
                for dst_b in targets_b:
                    dst = (dst_a, dst_b)
                    transitions.setdefault(current, {}).setdefault(symbol, set()).add(dst)
                    if dst not in states:
                        states.add(dst)
                        stack.append(dst)
    finals = {(qa, qb) for (qa, qb) in states if qa in a.finals and qb in b.finals}
    return NFA(states, left.alphabet | right.alphabet, transitions, initial, finals)


def complement(nfa: NFA, alphabet: Iterable[Symbol] | None = None) -> NFA:
    """The automaton ``A̅`` defining ``Sigma* − [A]``.

    ``alphabet`` fixes the universe ``Sigma``; it defaults to the automaton's
    own alphabet.  Complementation goes through determinisation, which is the
    source of the exponential blow-ups that Table 2 and Theorem 6.11 account
    for.
    """
    symbols = frozenset(alphabet) if alphabet is not None else nfa.alphabet
    dfa = DFA.from_nfa(nfa.remove_epsilon()).complemented(symbols)
    return dfa.to_nfa().with_alphabet(symbols)


def difference(left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None) -> NFA:
    """The automaton defining ``[left] − [right]`` (the paper's ``A1 − A2``)."""
    symbols = frozenset(alphabet) if alphabet is not None else left.alphabet | right.alphabet
    return intersection(left.with_alphabet(symbols), complement(right, symbols))


def sigma_star(alphabet: Iterable[Symbol]) -> NFA:
    """The automaton defining ``Sigma*`` (used, e.g., by ``concat-univ[R]``)."""
    return NFA.universal(alphabet)


def concat_all(automata: Sequence[NFA]) -> NFA:
    """Concatenate a (possibly empty) sequence of automata, left to right."""
    return concat(*automata) if automata else NFA.epsilon_language()


def union_all(automata: Sequence[NFA]) -> NFA:
    """Union of a (possibly empty) sequence of automata."""
    return union(*automata) if automata else NFA.empty_language()
