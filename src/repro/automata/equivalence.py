"""Emptiness, inclusion and equivalence of regular string languages.

``equiv[R]`` (Definition 1) is PSPACE-complete for nFAs (Theorem 5.1, citing
Meyer & Stockmeyer); this module implements it exactly via subset
construction and product exploration, with counter-example extraction used
both by the tests and by the human-readable design reports.

The public predicates (:func:`includes`, :func:`equivalent`,
:func:`counterexample`, :func:`disjoint`, ...) route through the process
:class:`~repro.engine.compilation.CompilationEngine`, which memoizes the
verdicts by content fingerprint and answers equivalence of structurally
identical automata without any product exploration.  Boolean verdicts are
decided by the antichain search of :mod:`repro.automata.kernel` (no
complement automaton, no left determinisation); the raw breadth-first
product search remains available as
:func:`counterexample_inclusion_uncached` -- it is what extracts shortest
witness words on a failed inclusion, and what the property-based tests use
as the independent oracle for the cached paths.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from typing import Optional

from repro.automata.nfa import NFA, Symbol, Word


def is_empty(nfa: NFA) -> bool:
    """Decide whether ``[A] = ∅``."""
    return nfa.is_empty_language()


def find_word(nfa: NFA) -> Optional[Word]:
    """Return some word of ``[A]`` (a shortest one), or ``None`` when empty."""
    return nfa.shortest_word()


def _joint_alphabet(left: NFA, right: NFA, alphabet: Iterable[Symbol] | None) -> frozenset[Symbol]:
    if alphabet is not None:
        return frozenset(alphabet)
    return left.alphabet | right.alphabet


def _engine():
    from repro.engine.compilation import get_default_engine

    return get_default_engine()


def counterexample_inclusion_uncached(
    left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None
) -> Optional[Word]:
    """Return a word in ``[left] − [right]``, or ``None`` if ``[left] ⊆ [right]``.

    The search explores the product of the subset simulations of both
    automata breadth-first, so the returned counter-example is shortest.
    This is the raw search; :func:`counterexample_inclusion` is the cached
    entry point.
    """
    symbols = sorted(_joint_alphabet(left, right, alphabet))
    a = left.remove_epsilon()
    b = right.remove_epsilon()
    start = (a.epsilon_closure({a.initial}), b.epsilon_closure({b.initial}))
    queue: deque[tuple[Word, tuple[frozenset, frozenset]]] = deque([((), start)])
    seen = {start}
    while queue:
        word, (sa, sb) = queue.popleft()
        if (sa & a.finals) and not (sb & b.finals):
            return word
        for symbol in symbols:
            na = a.step(sa, symbol)
            if not na:
                # left cannot accept any extension; prune
                continue
            nb = b.step(sb, symbol)
            pair = (na, nb)
            if pair not in seen:
                seen.add(pair)
                queue.append((word + (symbol,), pair))
    return None


def counterexample_inclusion(
    left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None
) -> Optional[Word]:
    """Cached version of :func:`counterexample_inclusion_uncached`."""
    return _engine().inclusion_counterexample(left, right, alphabet)


def includes(big: NFA, small: NFA, alphabet: Iterable[Symbol] | None = None) -> bool:
    """Decide ``[small] ⊆ [big]`` (the ``τ ≤ τ'`` relation of Section 2.4)."""
    return _engine().includes(big, small, alphabet)


def equivalent(left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None) -> bool:
    """Decide ``[left] = [right]`` (the problem ``equiv[R]``)."""
    return _engine().equivalent(left, right, alphabet)


def counterexample(
    left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None
) -> Optional[tuple[str, Word]]:
    """Return a witness of non-equivalence.

    The result is ``None`` when the languages are equal, otherwise a pair
    ``(side, word)`` where ``side`` is ``"left-only"`` or ``"right-only"``.
    """
    word = counterexample_inclusion(left, right, alphabet)
    if word is not None:
        return ("left-only", word)
    word = counterexample_inclusion(right, left, alphabet)
    if word is not None:
        return ("right-only", word)
    return None


def proper_subset(small: NFA, big: NFA, alphabet: Iterable[Symbol] | None = None) -> bool:
    """Decide ``[small] ⊂ [big]`` (the strict ``τ < τ'`` relation)."""
    return includes(big, small, alphabet) and not includes(small, big, alphabet)


def disjoint(left: NFA, right: NFA) -> bool:
    """Decide ``[left] ∩ [right] = ∅`` without building the full product automaton."""
    return _engine().disjoint(left, right)


def concat_universality(left: NFA, right: NFA, alphabet: Iterable[Symbol]) -> bool:
    """The problem ``concat-univ[R]`` (Definition 16): is ``[left]◦[right] = Sigma*``?

    PSPACE-complete (Lemma 3.9); used by the hardness reductions of
    Corollaries 3.11 and 3.14 and exercised by the benchmarks.
    """
    from repro.automata.operations import concat, sigma_star

    return equivalent(concat(left, right), sigma_star(alphabet), alphabet)


def language_equal_upto(left: NFA, right: NFA, max_length: int) -> bool:
    """Brute-force comparison of the languages up to ``max_length``.

    Only used by the property-based tests as an independent oracle for
    :func:`equivalent`.
    """
    return left.language_upto(max_length) == right.language_upto(max_length)


def minimal_dfa_size(nfa: NFA) -> int:
    """Number of states of the minimal DFA (state complexity of the language)."""
    return len(_engine().minimal_dfa(nfa).states)
