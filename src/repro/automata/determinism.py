"""One-unambiguous regular languages (``dRE``s, Section 2.1.2 and Prop. 3.6).

A regular *language* is one-unambiguous when it is definable by a
deterministic regular expression.  The decision problem ``one-unamb[R]``
(Definition 2) is solved here with the Brüggemann-Klein & Wood
characterisation [11]:

* the *orbit* of a state of the minimal DFA is its strongly connected
  component;
* a *gate* of an orbit is a state that is final or has a transition leaving
  the orbit;
* the automaton has the *orbit property* when all gates of each orbit agree
  on finality and on their out-of-orbit transitions;
* a symbol ``a`` is *M-consistent* when all final states have an
  ``a``-transition to one common state; the *S-cut* removes, for every
  consistent symbol in ``S``, those transitions out of final states.

**Theorem (BKW).**  ``L(M)`` (``M`` minimal) is one-unambiguous iff the cut
of ``M`` by the set of all M-consistent symbols satisfies the orbit property
and all its orbit languages are one-unambiguous; a minimal automaton that is
a single non-trivial orbit with no consistent symbol is *not*
one-unambiguous.

The paper uses this machinery for ``cons[dRE-DTD]`` / ``cons[dRE-SDTD]``
(Theorems 3.10 and 3.13) and for the size bounds of Corollary 3.7.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

from repro.automata.dfa import DFA, minimal_dfa
from repro.automata.nfa import NFA, Symbol
from repro.automata.regex import Regex, ensure_nfa


# --------------------------------------------------------------------------- #
# strongly connected components (orbits)
# --------------------------------------------------------------------------- #


def _orbits(dfa: DFA) -> dict[object, frozenset]:
    """Map every state to its orbit (SCC of the transition graph)."""
    # Tarjan's algorithm, iterative to avoid recursion limits.
    index_counter = 0
    indices: dict[object, int] = {}
    lowlink: dict[object, int] = {}
    on_stack: set[object] = set()
    stack: list[object] = []
    result: dict[object, frozenset] = {}

    adjacency: dict[object, list[object]] = {state: [] for state in dfa.states}
    for (src, _symbol), dst in dfa.transitions.items():
        adjacency[src].append(dst)

    for root in dfa.states:
        if root in indices:
            continue
        work = [(root, iter(adjacency[root]))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:
                if successor not in indices:
                    indices[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                orbit = frozenset(component)
                for member in component:
                    result[member] = orbit
    return result


def _gates(dfa: DFA, orbit_of: dict[object, frozenset]) -> dict[frozenset, frozenset]:
    """Map each orbit to its set of gates."""
    gates: dict[frozenset, set] = {}
    for state in dfa.states:
        orbit = orbit_of[state]
        gates.setdefault(orbit, set())
        if state in dfa.finals:
            gates[orbit].add(state)
            continue
        for symbol in dfa.alphabet:
            target = dfa.delta(state, symbol)
            if target is not None and orbit_of[target] is not orbit and orbit_of[target] != orbit:
                gates[orbit].add(state)
                break
    return {orbit: frozenset(states) for orbit, states in gates.items()}


def _has_orbit_property(dfa: DFA, orbit_of: dict[object, frozenset]) -> bool:
    """Check the orbit property: all gates of an orbit have identical outside behaviour."""
    for orbit, gate_set in _gates(dfa, orbit_of).items():
        gate_list = sorted(gate_set, key=repr)
        for i in range(len(gate_list)):
            for j in range(i + 1, len(gate_list)):
                first, second = gate_list[i], gate_list[j]
                if (first in dfa.finals) != (second in dfa.finals):
                    return False
                for symbol in dfa.alphabet:
                    target_first = dfa.delta(first, symbol)
                    target_second = dfa.delta(second, symbol)
                    out_first = target_first is not None and orbit_of[target_first] != orbit
                    out_second = target_second is not None and orbit_of[target_second] != orbit
                    if out_first or out_second:
                        if target_first != target_second:
                            return False
    return True


def _consistent_symbols(dfa: DFA) -> dict[Symbol, object]:
    """Return the M-consistent symbols with their common follower state."""
    consistent: dict[Symbol, object] = {}
    if not dfa.finals:
        return consistent
    for symbol in dfa.alphabet:
        targets = {dfa.delta(final, symbol) for final in dfa.finals}
        if len(targets) == 1:
            target = next(iter(targets))
            if target is not None:
                consistent[symbol] = target
    return consistent


def _cut(dfa: DFA, symbols: Iterable[Symbol]) -> DFA:
    """The S-cut: remove transitions out of final states on the given symbols."""
    removed = set(symbols)
    transitions = {
        (src, symbol): dst
        for (src, symbol), dst in dfa.transitions.items()
        if not (src in dfa.finals and symbol in removed)
    }
    return DFA(dfa.states, dfa.alphabet, transitions, dfa.initial, dfa.finals)


def _orbit_automaton(dfa: DFA, orbit: frozenset, start: object, orbit_of: dict[object, frozenset]) -> DFA:
    """The orbit automaton ``M_q``: the orbit of ``q`` with ``q`` initial and the gates final."""
    gates = _gates(dfa, orbit_of)[orbit]
    transitions = {
        (src, symbol): dst
        for (src, symbol), dst in dfa.transitions.items()
        if src in orbit and dst in orbit
    }
    return DFA(orbit, dfa.alphabet, transitions, start, gates)


def _is_trivial(dfa: DFA) -> bool:
    """No transitions at all (language ⊆ {ε})."""
    return not dfa.transitions


def _bkw(dfa: DFA, depth: int = 0) -> bool:
    """Recursive Brüggemann-Klein/Wood test on a *minimal* DFA."""
    if depth > 64:  # pragma: no cover - defensive guard
        raise RecursionError("one-unambiguity test exceeded the expected recursion depth")
    working = dfa.trimmed()
    if not working.finals or _is_trivial(working):
        return True
    consistent = _consistent_symbols(working)
    cut = _cut(working, consistent)
    did_cut = cut.transition_count() < working.transition_count()
    orbit_of = _orbits(cut)
    orbits = set(orbit_of.values())
    if not _has_orbit_property(cut, orbit_of):
        return False
    single_full_orbit = len(orbits) == 1 and next(iter(orbits)) == cut.states
    if single_full_orbit and not did_cut and not _is_trivial(cut):
        # Minimal, strongly connected, non-trivial and un-cuttable: not one-unambiguous.
        return False
    for orbit in orbits:
        for state in orbit:
            sub = _orbit_automaton(cut, orbit, state, orbit_of)
            sub_minimal = DFA.from_nfa(sub.to_nfa()).minimized()
            if sub_minimal.transition_count() >= working.transition_count() and len(
                sub_minimal.states
            ) >= len(working.states) and not did_cut:
                # No progress is possible; treat as not one-unambiguous to
                # guarantee termination (this situation is covered by the
                # single-orbit case above, the guard is purely defensive).
                return False
            if not _bkw(sub_minimal, depth + 1):
                return False
    return True


def is_one_unambiguous(language: Union[str, Regex, NFA, DFA], names: bool = False) -> bool:
    """Decide ``one-unamb[R]``: is the given regular language one-unambiguous?

    The argument can be an automaton, a :class:`Regex` or regular-expression
    text.  Examples from the literature::

        >>> is_one_unambiguous("a*b*")
        True
        >>> is_one_unambiguous("(a|b)*a(a|b)")
        False
    """
    if isinstance(language, DFA):
        nfa = language.to_nfa()
    else:
        nfa = ensure_nfa(language, names=names)
    minimal = minimal_dfa(nfa)
    return _bkw(minimal)
