"""Nondeterministic finite automata (the paper's ``nFA``, Section 2.1.2).

An :class:`NFA` is the quintuple ``A = <K, Sigma, Delta, qs, F>`` of the
paper: a finite set of states, an alphabet of *symbols* (element names are
multi-character strings such as ``"nationalIndex"``), a transition relation
that may contain epsilon transitions, a single initial state and a set of
final states.

Words are represented as tuples of symbols.  The helper :func:`as_word`
turns a plain string into a word of single-character symbols, which keeps
unit tests close to the paper's notation (``"abba"`` becomes
``("a", "b", "b", "a")``).
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any, Optional

#: The epsilon label used in transition relations.  It is not a legal symbol.
EPSILON = ""

#: Shared empty transition row (avoids allocating one per missing-state lookup).
_EMPTY_ROW: dict = {}

State = Any
Symbol = str
Word = tuple[Symbol, ...]


def as_word(text: str | Sequence[Symbol]) -> Word:
    """Normalise ``text`` into a word (tuple of symbols).

    Strings are split into single-character symbols; any other sequence is
    converted element-wise.

    >>> as_word("abc")
    ('a', 'b', 'c')
    >>> as_word(["index", "value"])
    ('index', 'value')
    """
    if isinstance(text, str):
        return tuple(text)
    return tuple(text)


class NFA:
    """A nondeterministic finite automaton with epsilon transitions.

    Parameters
    ----------
    states:
        Iterable of hashable state identifiers.
    alphabet:
        Iterable of symbols (non-empty strings).
    transitions:
        Mapping ``state -> {label -> set of states}`` where ``label`` is a
        symbol or :data:`EPSILON`.
    initial:
        The initial state ``qs``.
    finals:
        Iterable of accepting states.
    """

    __slots__ = ("states", "alphabet", "transitions", "initial", "finals", "_closure_cache")

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[State, Mapping[Symbol, Iterable[State]]],
        initial: State,
        finals: Iterable[State],
    ) -> None:
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.initial = initial
        self.finals = frozenset(finals)
        table: dict[State, dict[Symbol, frozenset[State]]] = {}
        for src, row in transitions.items():
            table[src] = {label: frozenset(dsts) for label, dsts in row.items() if dsts}
        self.transitions = table
        #: Per-state ε-closure memo.  The automaton is immutable, so each
        #: state's closure is computed by one BFS ever; every later
        #: ``epsilon_closure`` / ``step`` / subset-construction call is a
        #: dictionary lookup plus a union.
        self._closure_cache: dict[State, frozenset[State]] = {}
        self._validate()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def empty_language(cls, alphabet: Iterable[Symbol] = ()) -> "NFA":
        """The automaton defining the empty language (the paper's ``∅``)."""
        return cls({0}, alphabet, {}, 0, frozenset())

    @classmethod
    def epsilon_language(cls, alphabet: Iterable[Symbol] = ()) -> "NFA":
        """The automaton accepting exactly the empty word."""
        return cls({0}, alphabet, {}, 0, {0})

    @classmethod
    def symbol(cls, sym: Symbol) -> "NFA":
        """The automaton accepting exactly the one-symbol word ``sym``."""
        return cls({0, 1}, {sym}, {0: {sym: {1}}}, 0, {1})

    @classmethod
    def from_word(cls, word: str | Sequence[Symbol]) -> "NFA":
        """The automaton accepting exactly ``word``."""
        w = as_word(word)
        states = set(range(len(w) + 1))
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        for i, sym in enumerate(w):
            transitions.setdefault(i, {}).setdefault(sym, set()).add(i + 1)
        return cls(states, set(w), transitions, 0, {len(w)})

    @classmethod
    def from_finite_language(cls, words: Iterable[str | Sequence[Symbol]]) -> "NFA":
        """The automaton accepting exactly the given finite set of words."""
        from repro.automata.operations import union

        automata = [cls.from_word(w) for w in words]
        if not automata:
            return cls.empty_language()
        result = automata[0]
        for nfa in automata[1:]:
            result = union(result, nfa)
        return result

    @classmethod
    def universal(cls, alphabet: Iterable[Symbol]) -> "NFA":
        """The automaton accepting ``Sigma*`` over ``alphabet``."""
        syms = frozenset(alphabet)
        return cls({0}, syms, {0: {sym: {0} for sym in syms}}, 0, {0})

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        if self.initial not in self.states:
            raise ValueError(f"initial state {self.initial!r} is not a state")
        if not self.finals <= self.states:
            raise ValueError("final states must be a subset of the states")
        for src, row in self.transitions.items():
            if src not in self.states:
                raise ValueError(f"transition source {src!r} is not a state")
            for label, dsts in row.items():
                if label != EPSILON and label not in self.alphabet:
                    raise ValueError(f"transition label {label!r} not in alphabet")
                if not dsts <= self.states:
                    raise ValueError(f"transition targets {dsts!r} are not all states")

    def successors(self, state: State, label: Symbol) -> frozenset[State]:
        """Return ``Delta(state, label)`` (without epsilon closure)."""
        return self.transitions.get(state, {}).get(label, frozenset())

    def iter_transitions(self) -> Iterator[tuple[State, Symbol, State]]:
        """Iterate over all transitions as ``(source, label, target)`` triples."""
        for src, row in self.transitions.items():
            for label, dsts in row.items():
                for dst in dsts:
                    yield src, label, dst

    def transition_count(self) -> int:
        """Number of transitions (used by the size accounting of Table 2)."""
        return sum(len(dsts) for row in self.transitions.values() for dsts in row.values())

    @property
    def size(self) -> int:
        """Size measure ``|A|`` = number of states plus number of transitions."""
        return len(self.states) + self.transition_count()

    def has_epsilon_transitions(self) -> bool:
        return any(EPSILON in row for row in self.transitions.values())

    # ------------------------------------------------------------------ #
    # runs
    # ------------------------------------------------------------------ #

    def _state_closure(self, state: State) -> frozenset[State]:
        """The ε-closure of one state (memoized; the automaton is immutable)."""
        cached = self._closure_cache.get(state)
        if cached is not None:
            return cached
        closure = {state}
        stack = [state]
        transitions = self.transitions
        while stack:
            current = stack.pop()
            for nxt in transitions.get(current, _EMPTY_ROW).get(EPSILON, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        result = frozenset(closure)
        self._closure_cache[state] = result
        return result

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """Return the set of states reachable from ``states`` via epsilon moves."""
        iterator = iter(states)
        try:
            first = next(iterator)
        except StopIteration:
            return frozenset()
        closure = self._state_closure(first)
        result: Optional[set[State]] = None
        for state in iterator:
            extra = self._state_closure(state)
            if extra <= closure:
                continue
            if result is None:
                result = set(closure)
            result |= extra
        return closure if result is None else frozenset(result)

    def step(self, states: Iterable[State], symbol: Symbol) -> frozenset[State]:
        """One macro-step of the subset simulation: closure, then ``symbol``, then closure."""
        current = self.epsilon_closure(states)
        moved: set[State] = set()
        transitions = self.transitions
        for state in current:
            targets = transitions.get(state, _EMPTY_ROW).get(symbol)
            if targets:
                moved |= targets
        return self.epsilon_closure(moved)

    def run(self, word: str | Sequence[Symbol], start: Optional[Iterable[State]] = None) -> frozenset[State]:
        """Return the set of states reachable after reading ``word``.

        This is the extended transition relation ``Delta*`` of the paper,
        evaluated from ``start`` (default: the initial state).
        """
        current = self.epsilon_closure({self.initial} if start is None else set(start))
        for symbol in as_word(word):
            current = self.step(current, symbol)
            if not current:
                break
        return current

    def accepts(self, word: str | Sequence[Symbol]) -> bool:
        """Decide membership of ``word`` in ``[A]``."""
        return bool(self.run(word) & self.finals)

    # ------------------------------------------------------------------ #
    # reachability and normal forms
    # ------------------------------------------------------------------ #

    def reachable_states(self, start: Optional[Iterable[State]] = None) -> frozenset[State]:
        """States reachable from ``start`` (default: the initial state) via any labels."""
        seen = set({self.initial} if start is None else start)
        stack = list(seen)
        transitions = self.transitions
        while stack:
            state = stack.pop()
            for dsts in transitions.get(state, _EMPTY_ROW).values():
                for dst in dsts:
                    if dst not in seen:
                        seen.add(dst)
                        stack.append(dst)
        return frozenset(seen)

    def coreachable_states(self, targets: Optional[Iterable[State]] = None) -> frozenset[State]:
        """States from which some state in ``targets`` (default: finals) is reachable."""
        goal = frozenset(self.finals if targets is None else targets)
        predecessors: dict[State, list[State]] = {}
        for src, row in self.transitions.items():
            for dsts in row.values():
                for dst in dsts:
                    bucket = predecessors.get(dst)
                    if bucket is None:
                        predecessors[dst] = [src]
                    else:
                        bucket.append(src)
        seen = set(goal)
        stack = list(goal)
        while stack:
            state = stack.pop()
            for prev in predecessors.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    stack.append(prev)
        return frozenset(seen)

    def trim(self) -> "NFA":
        """Remove states that are unreachable or cannot reach a final state.

        The initial state is always kept so that the result is a well-formed
        automaton even when the language is empty.
        """
        useful = self.reachable_states() & self.coreachable_states()
        if useful == self.states:
            return self
        keep = useful | {self.initial}
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        for src, label, dst in self.iter_transitions():
            if src in useful and dst in useful:
                transitions.setdefault(src, {}).setdefault(label, set()).add(dst)
        return NFA(keep, self.alphabet, transitions, self.initial, self.finals & keep)

    def relabel(self, prefix: str = "q") -> "NFA":
        """Return an isomorphic automaton whose states are ``prefix0 .. prefixN``.

        Useful before combining automata whose state sets might clash.
        """
        mapping = {state: f"{prefix}{index}" for index, state in enumerate(sorted(self.states, key=repr))}
        return self.map_states(mapping)

    def map_states(self, mapping: Mapping[State, State]) -> "NFA":
        """Rename states according to ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("state mapping must be injective")
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        for src, label, dst in self.iter_transitions():
            transitions.setdefault(mapping[src], {}).setdefault(label, set()).add(mapping[dst])
        return NFA(
            {mapping[state] for state in self.states},
            self.alphabet,
            transitions,
            mapping[self.initial],
            {mapping[state] for state in self.finals},
        )

    def with_alphabet(self, alphabet: Iterable[Symbol]) -> "NFA":
        """Return the same automaton over a (super-)alphabet."""
        symbols = frozenset(alphabet) | self.alphabet
        if symbols == self.alphabet:
            return self
        return NFA(self.states, symbols, self.transitions, self.initial, self.finals)

    def restrict_alphabet(self, alphabet: Iterable[Symbol]) -> "NFA":
        """Return the automaton restricted to ``alphabet``.

        Transitions on symbols outside the new alphabet are dropped, so the
        resulting language is ``[A] ∩ alphabet*``.  This is what the schema
        reduction of Definition 5 uses to purge removed element names from
        content models.
        """
        symbols = frozenset(alphabet)
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        for src, label, dst in self.iter_transitions():
            if label == EPSILON or label in symbols:
                transitions.setdefault(src, {}).setdefault(label, set()).add(dst)
        return NFA(self.states, symbols, transitions, self.initial, self.finals)

    def rename_symbols(self, mapping: Mapping[Symbol, Symbol]) -> "NFA":
        """Apply a letter-to-letter morphism to the automaton's labels.

        Symbols not present in ``mapping`` are kept unchanged.  This is the
        operation used to apply the specialisation mapping ``mu`` of SDTDs and
        EDTDs to content models.
        """
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        for src, label, dst in self.iter_transitions():
            new_label = label if label == EPSILON else mapping.get(label, label)
            transitions.setdefault(src, {}).setdefault(new_label, set()).add(dst)
        alphabet = {mapping.get(sym, sym) for sym in self.alphabet}
        return NFA(self.states, alphabet, transitions, self.initial, self.finals)

    def remove_epsilon(self) -> "NFA":
        """Return an equivalent automaton without epsilon transitions."""
        if not self.has_epsilon_transitions():
            return self
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        finals = set()
        for state in self.states:
            closure = self.epsilon_closure({state})
            if closure & self.finals:
                finals.add(state)
            for mid in closure:
                for label, dsts in self.transitions.get(mid, {}).items():
                    if label == EPSILON:
                        continue
                    for dst in dsts:
                        transitions.setdefault(state, {}).setdefault(label, set()).add(dst)
        return NFA(self.states, self.alphabet, transitions, self.initial, finals)

    def fragment(self, start: State, end: State) -> "NFA":
        """The *local automaton* ``A(start, end)`` of Section 6.

        It accepts exactly the strings labelling a path from ``start`` to
        ``end`` in this automaton (the trimming of unreachable transitions
        performed by the paper does not change the language and is applied
        here via :meth:`trim` for faithfulness).
        """
        if start not in self.states or end not in self.states:
            raise ValueError("fragment endpoints must be states of the automaton")
        return NFA(self.states, self.alphabet, self.transitions, start, {end}).trim()

    # ------------------------------------------------------------------ #
    # language exploration
    # ------------------------------------------------------------------ #

    def is_empty_language(self) -> bool:
        """Decide whether ``[A]`` is the empty language."""
        return not (self.reachable_states() & self.finals)

    def accepts_epsilon(self) -> bool:
        return bool(self.epsilon_closure({self.initial}) & self.finals)

    def enumerate_language(self, max_length: int) -> Iterator[Word]:
        """Yield every accepted word of length at most ``max_length``.

        Enumeration is breadth-first over subset-simulation states so that it
        remains usable even when the alphabet is moderately large; it is the
        brute-force oracle used by the property-based tests.
        """
        symbols = sorted(self.alphabet)
        start = self.epsilon_closure({self.initial})
        queue: deque[tuple[Word, frozenset[State]]] = deque([((), start)])
        while queue:
            word, current = queue.popleft()
            if current & self.finals:
                yield word
            if len(word) >= max_length:
                continue
            for symbol in symbols:
                nxt = self.step(current, symbol)
                if nxt:
                    queue.append((word + (symbol,), nxt))

    def language_upto(self, max_length: int) -> frozenset[Word]:
        """The set of accepted words of length at most ``max_length``."""
        return frozenset(self.enumerate_language(max_length))

    def shortest_word(self) -> Optional[Word]:
        """Return a shortest accepted word, or ``None`` if the language is empty."""
        start = self.epsilon_closure({self.initial})
        queue: deque[tuple[Word, frozenset[State]]] = deque([((), start)])
        seen = {start}
        while queue:
            word, current = queue.popleft()
            if current & self.finals:
                return word
            for symbol in sorted(self.alphabet):
                nxt = self.step(current, symbol)
                if nxt and nxt not in seen:
                    seen.add(nxt)
                    queue.append((word + (symbol,), nxt))
        return None

    def used_symbols(self) -> frozenset[Symbol]:
        """Symbols occurring on at least one transition of the trimmed automaton.

        This is the "alphabet of the language" used, e.g., when building the
        single-type closure of an EDTD or the ``kappa`` assignment of
        Corollary 4.16.  Computed directly from the useful-state set -- the
        trimmed automaton itself is never materialised.
        """
        useful = self.reachable_states() & self.coreachable_states()
        used = set()
        for src, row in self.transitions.items():
            if src not in useful:
                continue
            for label, dsts in row.items():
                if label == EPSILON or label in used:
                    continue
                if any(dst in useful for dst in dsts):
                    used.add(label)
        return frozenset(used)

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #

    def __contains__(self, word: str | Sequence[Symbol]) -> bool:
        return self.accepts(word)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NFA(states={len(self.states)}, transitions={self.transition_count()}, "
            f"alphabet={sorted(self.alphabet)!r})"
        )

    def describe(self) -> str:
        """A multi-line human-readable description (used by the examples)."""
        lines = [f"initial: {self.initial!r}", f"finals: {sorted(map(repr, self.finals))}"]
        for src, label, dst in sorted(self.iter_transitions(), key=lambda t: (repr(t[0]), t[1], repr(t[2]))):
            shown = label if label != EPSILON else "ε"
            lines.append(f"  {src!r} --{shown}--> {dst!r}")
        return "\n".join(lines)


def product_words(parts: Sequence[Iterable[Word]]) -> Iterator[Word]:
    """Concatenate one word from each part, in every possible way.

    This realises the *direct extension* ``[(An)]`` of a sequence of
    languages (Section 6) for finite fragments of the languages; it is used
    by brute-force oracles in the tests.
    """
    for combination in itertools.product(*[list(p) for p in parts]):
        word: Word = ()
        for piece in combination:
            word = word + tuple(piece)
        yield word
