"""Compact integer/bitset representation of finite automata.

The hashable-object :class:`~repro.automata.nfa.NFA` /
:class:`~repro.automata.dfa.DFA` classes are the faithful, paper-notation
substrate; every hot decision procedure bottoms out in set algebra over
their states.  This module *interns* states and symbols to dense integers
once and re-expresses that set algebra on Python big-int bitsets:

* a set of states is one ``int`` (bit ``q`` set iff state ``q`` is in the
  set), so union is ``|``, intersection ``&``, subset testing
  ``a | b == b``, and emptiness ``== 0``;
* transitions are per-symbol successor arrays ``delta[a][q] -> bitmask``;
* per-state ε-closures are computed once at lift time and folded into the
  successor arrays, so downstream algorithms never see ε again.

The lift keeps the original state and symbol objects around
(:attr:`CompactNFA.states`, :attr:`CompactNFA.symbols`), which makes
lowering back to the public API cheap and exact: the subset construction of
:mod:`repro.automata.kernel.determinize` reproduces the legacy
``DFA.from_nfa`` output *state-for-state*.

Two transition conventions appear below; both define the same language:

* ``delta`` (the *pre-closure* convention, matching
  :meth:`NFA.remove_epsilon`): ``delta[a][q] = Δ(closure(q), a)`` with no
  trailing closure, paired with closure-adjusted finals;
* the *closed* step used by subset construction:
  ``step(S, a) = closure(Δ(S, a))`` for an already-closed ``S``, paired
  with the raw finals.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.automata.nfa import EPSILON, NFA, Symbol


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(indices: Iterable[int]) -> int:
    """The bitmask with exactly the given bits set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


class CompactNFA:
    """An ε-free integer/bitset view of an :class:`NFA`.

    Parameters
    ----------
    nfa:
        The automaton to lift.
    symbols:
        Optional shared symbol universe (a sequence of symbols).  When
        several automata take part in one product construction they must be
        lifted over the *same* symbol ordering; symbols of ``nfa`` outside
        the universe are dropped (they cannot fire in a product anyway) and
        universe symbols unused by ``nfa`` get all-zero successor rows.
        Defaults to ``sorted(nfa.alphabet)``.
    """

    __slots__ = (
        "nfa",
        "states",
        "state_index",
        "n",
        "rows",
        "closures",
        "initial",
        "initial_closed",
        "finals_raw",
        "finals_closed",
        "_symbols",
        "_symbol_index",
        "_delta",
        "_reach",
        "_coreach",
        "initial_mask",
        "union_rows",
    )

    def __init__(self, nfa: NFA, symbols: Optional[Iterable[Symbol]] = None) -> None:
        self.nfa = nfa
        states = sorted(nfa.states, key=repr)
        self.states: tuple = tuple(states)
        self.state_index = {state: index for index, state in enumerate(states)}
        self.n = len(states)
        self._symbols: Optional[tuple] = tuple(symbols) if symbols is not None else None
        self._symbol_index: Optional[dict] = None
        self._delta: Optional[list[list[int]]] = None

        index_of = self.state_index
        # Raw transition masks, per state: {symbol -> successor mask}.
        raw: list[dict[Symbol, int]] = [dict() for _ in range(self.n)]
        eps: list[int] = [0] * self.n
        for src, row in nfa.transitions.items():
            q = index_of[src]
            masks = raw[q]
            for label, dsts in row.items():
                mask = 0
                for dst in dsts:
                    mask |= 1 << index_of[dst]
                if label == EPSILON:
                    eps[q] = mask
                else:
                    masks[label] = mask

        # Per-state ε-closures (one pass; reused for every convention).
        closures = [0] * self.n
        for q in range(self.n):
            closure = 1 << q
            frontier = eps[q] & ~closure
            while frontier:
                closure |= frontier
                new = 0
                remaining = frontier
                while remaining:
                    low = remaining & -remaining
                    new |= eps[low.bit_length() - 1]
                    remaining ^= low
                frontier = new & ~closure
            closures[q] = closure
        self.closures = closures

        # Sparse pre-closure successor rows: rows[q][a] = Δ(closure(q), a).
        # Sparse keeps the lift linear in the transition count -- crucial
        # for product constructions over large shared alphabets, where a
        # dense per-symbol table would cost O(|Σ|·n) per lift.
        if any(eps):
            rows: list[dict[Symbol, int]] = []
            for q in range(self.n):
                closure = closures[q]
                if closure == (1 << q):
                    rows.append(raw[q])
                    continue
                combined: dict[Symbol, int] = dict(raw[q])
                remaining = closure & ~(1 << q)
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    for label, mask in raw[low.bit_length() - 1].items():
                        if label in combined:
                            combined[label] |= mask
                        else:
                            combined[label] = mask
                rows.append(combined)
            self.rows = rows
        else:
            self.rows = raw

        self.initial = index_of[nfa.initial]
        self.initial_closed = closures[self.initial]
        self.initial_mask = 1 << self.initial
        #: Bounded cache of dense union rows: ``child_mask -> tuple`` where
        #: entry ``q`` is ``Δ(closure(q), child_mask)`` -- the union of the
        #: pre-closure successor rows of every symbol in the mask.  Filled
        #: lazily by :meth:`CompiledSchema._horizontal_accepts
        #: <repro.engine.batch.CompiledSchema._horizontal_accepts>`; the
        #: same child-state symbol sets recur constantly across sibling
        #: words, so one dict probe replaces the inner symbol scan.
        self.union_rows: dict = {}
        finals_raw = 0
        for state in nfa.finals:
            finals_raw |= 1 << index_of[state]
        self.finals_raw = finals_raw
        finals_closed = 0
        for q in range(self.n):
            if closures[q] & finals_raw:
                finals_closed |= 1 << q
        self.finals_closed = finals_closed
        self._reach: Optional[list[int]] = None
        self._coreach: Optional[list[int]] = None

    # ------------------------------------------------------------------ #
    # dense per-symbol view (built on first use)
    # ------------------------------------------------------------------ #

    @property
    def symbols(self) -> tuple:
        """The symbol universe, in the order the dense ``delta`` uses."""
        if self._symbols is None:
            self._symbols = tuple(sorted(self.nfa.alphabet))
        return self._symbols

    @property
    def symbol_index(self) -> dict:
        if self._symbol_index is None:
            self._symbol_index = {symbol: index for index, symbol in enumerate(self.symbols)}
        return self._symbol_index

    @property
    def delta(self) -> list[list[int]]:
        """Dense pre-closure successor arrays ``delta[a][q]`` (lazy).

        Symbols of the automaton outside the configured universe are
        dropped; universe symbols the automaton never reads give all-zero
        rows.  Algorithms that iterate the whole symbol universe per state
        set (subset construction, the batch-validation run loop) want this
        layout; purely sparse consumers use :attr:`rows` directly.
        """
        if self._delta is None:
            index_of = self.symbol_index
            delta: list[list[int]] = [[0] * self.n for _ in range(len(self.symbols))]
            for q, row in enumerate(self.rows):
                for label, mask in row.items():
                    a = index_of.get(label)
                    if a is not None:
                        delta[a][q] = mask
            self._delta = delta
        return self._delta

    # ------------------------------------------------------------------ #
    # steps
    # ------------------------------------------------------------------ #

    def closure_of(self, mask: int) -> int:
        """The ε-closure of a state set given as a bitmask."""
        closures = self.closures
        result = 0
        while mask:
            low = mask & -mask
            result |= closures[low.bit_length() - 1]
            mask ^= low
        return result

    def step_closed(self, mask: int, symbol_id: int) -> int:
        """``closure(Δ(mask, symbol))`` for an already ε-closed ``mask``.

        This is exactly the macro-step of the legacy subset construction
        (:meth:`NFA.step`), so iterating it from :attr:`initial_closed`
        enumerates the same subset states.
        """
        row = self.delta[symbol_id]
        moved = 0
        while mask:
            low = mask & -mask
            moved |= row[low.bit_length() - 1]
            mask ^= low
        return self.closure_of(moved)

    def accepts_mask(self, mask: int) -> bool:
        """Does an ε-closed state set contain an accepting state?"""
        return bool(mask & self.finals_raw)

    # ------------------------------------------------------------------ #
    # reachability (transitive closures as bitsets)
    # ------------------------------------------------------------------ #

    def _adjacency(self) -> list[int]:
        """Successor mask per state over *all* labels (ε included)."""
        adjacency = [0] * self.n
        index_of = self.state_index
        for src, row in self.nfa.transitions.items():
            q = index_of[src]
            mask = 0
            for dsts in row.values():
                for dst in dsts:
                    mask |= 1 << index_of[dst]
            adjacency[q] = mask
        return adjacency

    @staticmethod
    def _transitive_closure(adjacency: list[int]) -> list[int]:
        """``reach[q]`` = all states reachable from ``q`` (including ``q``).

        Tarjan condensation: strongly connected components share one reach
        mask, and components finish in reverse topological order, so each
        component's mask is its own states OR'd with its successors' already
        final masks -- one linear pass, no fixpoint iteration.
        """
        n = len(adjacency)
        reach = [0] * n
        index_of: list[int] = [-1] * n
        lowlink: list[int] = [0] * n
        on_stack = 0  # bitmask of states on the Tarjan stack
        stack: list[int] = []
        counter = 0
        for root in range(n):
            if index_of[root] >= 0:
                continue
            work = [(root, adjacency[root])]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack |= 1 << root
            while work:
                node, pending = work[-1]
                advanced = False
                while pending:
                    low = pending & -pending
                    pending ^= low
                    successor = low.bit_length() - 1
                    if index_of[successor] < 0:
                        work[-1] = (node, pending)
                        index_of[successor] = lowlink[successor] = counter
                        counter += 1
                        stack.append(successor)
                        on_stack |= 1 << successor
                        work.append((successor, adjacency[successor]))
                        advanced = True
                        break
                    if (on_stack >> successor) & 1:
                        if index_of[successor] < lowlink[node]:
                            lowlink[node] = index_of[successor]
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if lowlink[node] < lowlink[parent]:
                        lowlink[parent] = lowlink[node]
                if lowlink[node] == index_of[node]:
                    component_mask = 0
                    members = []
                    while True:
                        member = stack.pop()
                        on_stack &= ~(1 << member)
                        component_mask |= 1 << member
                        members.append(member)
                        if member == node:
                            break
                    # Successor components are already finished (reverse
                    # topological order), so their reach masks are final.
                    result = component_mask
                    for member in members:
                        targets = adjacency[member] & ~component_mask
                        while targets:
                            low = targets & -targets
                            targets ^= low
                            result |= reach[low.bit_length() - 1]
                    for member in members:
                        reach[member] = result
        return reach

    @property
    def reach(self) -> list[int]:
        """Per-state forward reachability bitsets (computed once, cached)."""
        if self._reach is None:
            self._reach = self._transitive_closure(self._adjacency())
        return self._reach

    @property
    def coreach(self) -> list[int]:
        """Per-state backward reachability bitsets (computed once, cached)."""
        if self._coreach is None:
            adjacency = self._adjacency()
            reverse = [0] * self.n
            for q in range(self.n):
                for dst in iter_bits(adjacency[q]):
                    reverse[dst] |= 1 << q
            self._coreach = self._transitive_closure(reverse)
        return self._coreach

    def reachable_from(self, mask: int) -> int:
        """All states reachable from the given state set (bitmask in/out)."""
        reach = self.reach
        result = 0
        while mask:
            low = mask & -mask
            result |= reach[low.bit_length() - 1]
            mask ^= low
        return result

    def coreachable_to(self, mask: int) -> int:
        """All states from which the given state set is reachable."""
        coreach = self.coreach
        result = 0
        while mask:
            low = mask & -mask
            result |= coreach[low.bit_length() - 1]
            mask ^= low
        return result

    # ------------------------------------------------------------------ #
    # lowering helpers
    # ------------------------------------------------------------------ #

    def mask_for(self, states: Iterable) -> int:
        """Lift a set of original state objects to a bitmask."""
        index_of = self.state_index
        mask = 0
        for state in states:
            mask |= 1 << index_of[state]
        return mask

    def states_for(self, mask: int) -> frozenset:
        """Lower a bitmask back to a frozenset of original state objects."""
        states = self.states
        lowered = []
        while mask:
            low = mask & -mask
            lowered.append(states[low.bit_length() - 1])
            mask ^= low
        return frozenset(lowered)
