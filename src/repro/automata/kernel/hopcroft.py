"""Hopcroft's O(n·|Σ|·log n) DFA minimisation on the compact kernel.

The legacy :meth:`DFA.minimized` runs Moore's refinement: every pass
recomputes a full signature per state, so it is O(n²·|Σ|) per pass and can
need n passes.  Hopcroft's algorithm refines with a worklist of *splitter*
blocks and always re-processes the smaller half, giving the classic
O(n·|Σ|·log n) bound.  Both compute the Myhill-Nerode partition of a
complete, trimmed DFA, so :func:`hopcroft_partition` is a drop-in source of
blocks for the same lowering the legacy path uses -- the minimized automata
are identical object-for-object.
"""

from __future__ import annotations

from repro.automata.dfa import DFA


def hopcroft_partition(dfa: DFA) -> list[frozenset]:
    """The Myhill-Nerode partition of a *complete* DFA, as frozenset blocks.

    The input must have a total transition function (callers pass
    ``dfa.completed().trimmed()``); states are arbitrary hashable objects.
    """
    states = sorted(dfa.states, key=repr)
    index_of = {state: i for i, state in enumerate(states)}
    n = len(states)
    symbols = sorted(dfa.alphabet)
    full = (1 << n) - 1

    # Inverse transition masks: preimage[a][q] = {p : δ(p, a) = q}.
    preimage: list[list[int]] = [[0] * n for _ in symbols]
    transitions = dfa.transitions
    for a, symbol in enumerate(symbols):
        row = preimage[a]
        for state in states:
            target = transitions.get((state, symbol))
            if target is not None:
                row[index_of[target]] |= 1 << index_of[state]

    finals = 0
    for state in dfa.finals:
        finals |= 1 << index_of[state]
    non_finals = full & ~finals

    blocks: list[int] = []
    if finals:
        blocks.append(finals)
    if non_finals:
        blocks.append(non_finals)
    # Worklist of block indices still usable as splitters.  Starting from
    # the smaller of the two initial blocks is sufficient (Hopcroft's
    # "all but the largest" invariant).
    if len(blocks) == 2:
        worklist = {0 if bin(blocks[0]).count("1") <= bin(blocks[1]).count("1") else 1}
    else:
        worklist = set(range(len(blocks)))

    while worklist:
        splitter = blocks[worklist.pop()]
        for a in range(len(symbols)):
            row = preimage[a]
            # X = states whose a-successor lies in the splitter.
            x = 0
            remaining = splitter
            while remaining:
                low = remaining & -remaining
                x |= row[low.bit_length() - 1]
                remaining ^= low
            if not x:
                continue
            for index in range(len(blocks)):
                block = blocks[index]
                inter = block & x
                if not inter or inter == block:
                    continue
                rest = block & ~x
                blocks[index] = inter
                blocks.append(rest)
                new_index = len(blocks) - 1
                if index in worklist:
                    worklist.add(new_index)
                elif bin(inter).count("1") <= bin(rest).count("1"):
                    # Keep the splitter small: re-process the lighter half.
                    worklist.add(index)
                else:
                    worklist.add(new_index)

    result = []
    for mask in blocks:
        members = []
        remaining = mask
        while remaining:
            low = remaining & -remaining
            members.append(states[low.bit_length() - 1])
            remaining ^= low
        result.append(frozenset(members))
    return result
