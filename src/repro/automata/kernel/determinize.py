"""Bitset subset construction (determinisation) on the compact kernel.

:func:`subset_construction` explores exactly the subset states the legacy
``DFA.from_nfa`` explores -- the start subset is the ε-closure of the
initial state and each macro-step is ``closure ∘ move ∘ closure`` -- but a
subset is one big-int bitmask instead of a ``frozenset`` of hashable
objects, so the visited-set lookups and the per-symbol moves are integer
operations.  :func:`determinize_nfa` lowers the result back to the public
:class:`~repro.automata.dfa.DFA` with the same frozenset-of-states naming
the legacy construction used, so callers (and fingerprints of reachable
states) cannot tell the difference.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA
from repro.automata.kernel.compact import CompactNFA
from repro.automata.nfa import NFA


def subset_construction(
    compact: CompactNFA,
) -> tuple[list[int], dict[tuple[int, int], int], int]:
    """Determinize a compact NFA; everything stays integer-coded.

    Returns ``(subset_masks, transitions, finals)`` where ``subset_masks``
    lists the reachable subset states (index = dense DFA state id, mask =
    the NFA states it contains; state ``0`` is the start), ``transitions``
    maps ``(dfa_state, symbol_id)`` to a DFA state id, and ``finals`` is a
    bitmask over DFA state ids.
    """
    start = compact.initial_closed
    subset_masks = [start]
    index_of_mask = {start: 0}
    transitions: dict[tuple[int, int], int] = {}
    finals = 0
    if compact.accepts_mask(start):
        finals |= 1
    queue = deque([0])
    delta = compact.delta
    closures = compact.closures
    num_symbols = len(compact.symbols)
    while queue:
        state_id = queue.popleft()
        mask = subset_masks[state_id]
        for symbol_id in range(num_symbols):
            row = delta[symbol_id]
            moved = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                moved |= row[low.bit_length() - 1]
                remaining ^= low
            if not moved:
                continue
            nxt = 0
            remaining = moved
            while remaining:
                low = remaining & -remaining
                nxt |= closures[low.bit_length() - 1]
                remaining ^= low
            nxt_id = index_of_mask.get(nxt)
            if nxt_id is None:
                nxt_id = len(subset_masks)
                index_of_mask[nxt] = nxt_id
                subset_masks.append(nxt)
                if compact.accepts_mask(nxt):
                    finals |= 1 << nxt_id
                queue.append(nxt_id)
            transitions[(state_id, symbol_id)] = nxt_id
    return subset_masks, transitions, finals


def determinize_nfa(nfa: NFA) -> DFA:
    """Kernel-backed replacement for the legacy ``DFA.from_nfa``.

    The returned DFA is state-for-state identical to the legacy subset
    construction: states are the reachable ε-closed subsets of ``nfa``'s
    states, as frozensets of the original state objects.
    """
    compact = CompactNFA(nfa)
    subset_masks, transitions, _finals = subset_construction(compact)
    lowered = [compact.states_for(mask) for mask in subset_masks]
    symbols = compact.symbols
    dfa_transitions = {
        (lowered[src], symbols[symbol_id]): lowered[dst]
        for (src, symbol_id), dst in transitions.items()
    }
    nfa_finals = nfa.finals
    finals = {subset for subset in lowered if subset & nfa_finals}
    return DFA(lowered, nfa.alphabet, dfa_transitions, lowered[0], finals)
