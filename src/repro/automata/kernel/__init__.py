"""Compact integer/bitset automata kernel.

States and symbols are interned to dense integers once; state sets become
big-int bitmasks; ε-closures are precomputed per state; determinisation is
a bitset subset construction; minimisation is Hopcroft's algorithm; and
inclusion/equivalence is an antichain-pruned on-the-fly product search that
never builds a complement automaton.

The public :class:`~repro.automata.nfa.NFA` / :class:`~repro.automata.dfa.
DFA` API is unchanged -- the hot entry points (``DFA.from_nfa``,
``DFA.minimized``, :mod:`repro.automata.equivalence`, the compilation
engine's pipeline, the batch-validation run loop and the product
constructions of :mod:`repro.core.perfect`) route through this package via
the cheap lift/lower converters of :mod:`repro.automata.kernel.compact`.
The legacy implementations stay available (``DFA.from_nfa_legacy``,
``DFA.minimized_moore``, ``counterexample_inclusion_uncached``) as
differential-testing oracles; ``tests/automata/test_kernel_identity.py``
checks the two sides agree on random automata.
"""

from repro.automata.kernel.compact import CompactNFA, iter_bits, mask_of
from repro.automata.kernel.determinize import determinize_nfa, subset_construction
from repro.automata.kernel.hopcroft import hopcroft_partition
from repro.automata.kernel.inclusion import (
    nfa_included,
    nfa_intersects,
    product_intersection,
    product_is_empty,
)

__all__ = [
    "CompactNFA",
    "iter_bits",
    "mask_of",
    "determinize_nfa",
    "subset_construction",
    "hopcroft_partition",
    "nfa_included",
    "nfa_intersects",
    "product_intersection",
    "product_is_empty",
]
