"""Antichain inclusion and on-the-fly products on the compact kernel.

The legacy inclusion test (:func:`repro.automata.equivalence.
counterexample_inclusion_uncached`) explores the product of the *subset*
simulations of both automata -- an implicit determinisation of the left
side that the verdict does not need.  :func:`nfa_included` instead runs the
antichain algorithm of De Wulf-Doyen-Henzinger-Raskin: it searches pairs
``(p, S)`` of a single left state and a right subset-bitmask, pruning every
pair that is *simulation-subsumed* by an already-visited one (same ``p``,
``S' ⊆ S``): whatever counterexample the subsumed pair could reach, the
smaller pair reaches too.  No complement automaton and no left
determinisation are ever materialised; in the spirit of implicit-hitting-set
style enumeration, only the frontier of minimal obligations is kept.

The verdict is exact -- the differential suite checks it against the legacy
product search -- but the *witness word* of a failed inclusion is not
computed here: callers that need one (the engine's counterexample API) run
the legacy breadth-first search, which stays the tie-breaking oracle.

:func:`product_intersection` and :func:`product_is_empty` are the bitset
versions of the synchronous product: the former lowers to the public
:class:`NFA` with the same pair-state naming as the legacy construction,
the latter never materialises the product at all.  All three work off the
*sparse* per-state successor rows of :class:`CompactNFA`, so a lift costs
O(states + transitions) regardless of how large the ambient alphabet is.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.automata.kernel.compact import CompactNFA, iter_bits
from repro.automata.nfa import NFA, Symbol


def nfa_included(
    left: NFA, right: NFA, alphabet: Optional[Iterable[Symbol]] = None
) -> bool:
    """Decide ``[left] ⊆ [right]`` with antichain-pruned on-the-fly search.

    ``alphabet`` bounds the word universe exactly like the legacy search:
    symbols outside it are never read.  Passing a superset of the left
    alphabet (the common case -- the joint alphabet of both sides) changes
    nothing, since a counterexample must be accepted by ``left``.
    """
    a = CompactNFA(left)
    b = CompactNFA(right)

    restricted: Optional[frozenset] = None
    if alphabet is not None:
        universe = frozenset(alphabet)
        if not left.alphabet <= universe:
            restricted = universe

    b_start = b.initial_closed
    # ε acceptance: the left initial state is its own obligation.
    if (a.finals_closed >> a.initial) & 1 and not (b_start & b.finals_raw):
        return False

    a_rows = a.rows
    a_finals = a.finals_closed
    b_rows = b.rows
    b_finals = b.finals_raw
    b_closures = b.closures

    # visited antichain: per left state, the minimal right masks.
    antichain: dict[int, list[int]] = {a.initial: [b_start]}
    queue: deque[tuple[int, int]] = deque([(a.initial, b_start)])

    while queue:
        p, sb = queue.popleft()
        for symbol, targets in a_rows[p].items():
            if restricted is not None and symbol not in restricted:
                continue
            # Right macro-step (move ∘ closure) shared by all left targets.
            moved = 0
            remaining = sb
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                mask = b_rows[low.bit_length() - 1].get(symbol)
                if mask:
                    moved |= mask
            nb = 0
            while moved:
                low = moved & -moved
                nb |= b_closures[low.bit_length() - 1]
                moved ^= low
            rejected = not (nb & b_finals)
            for q in iter_bits(targets):
                if rejected and (a_finals >> q) & 1:
                    return False
                kept = antichain.get(q)
                if kept is None:
                    antichain[q] = [nb]
                    queue.append((q, nb))
                    continue
                # Subsumption: skip (q, nb) if some kept S' ⊆ nb.
                if any(prior & nb == prior for prior in kept):
                    continue
                antichain[q] = [prior for prior in kept if nb & prior != nb]
                antichain[q].append(nb)
                queue.append((q, nb))
    return True


def nfa_intersects(left: NFA, right: NFA) -> bool:
    """Decide ``[left] ∩ [right] ≠ ∅`` without materialising the product."""
    return not product_is_empty(left, right)


def product_is_empty(left: NFA, right: NFA) -> bool:
    """Emptiness of the synchronous product, explored pair-by-pair."""
    a = CompactNFA(left)
    b = CompactNFA(right)
    a_accepting = a.finals_closed
    b_accepting = b.finals_closed
    start = (a.initial, b.initial)
    if (a_accepting >> a.initial) & 1 and (b_accepting >> b.initial) & 1:
        return False
    seen = {start}
    stack = [start]
    a_rows = a.rows
    b_rows = b.rows
    while stack:
        pa, pb = stack.pop()
        row_b = b_rows[pb]
        if not row_b:
            continue
        for symbol, targets_a in a_rows[pa].items():
            targets_b = row_b.get(symbol)
            if not targets_b:
                continue
            for qa in iter_bits(targets_a):
                qa_accepts = (a_accepting >> qa) & 1
                for qb in iter_bits(targets_b):
                    pair = (qa, qb)
                    if pair in seen:
                        continue
                    if qa_accepts and (b_accepting >> qb) & 1:
                        return False
                    seen.add(pair)
                    stack.append(pair)
    return True


def product_intersection(left: NFA, right: NFA) -> NFA:
    """The synchronous-product automaton for ``[left] ∩ [right]``.

    Pair states are named ``(left_state, right_state)`` over the original
    state objects -- the same naming as the legacy
    ``operations._binary_intersection`` -- and only reachable pairs are
    generated, so the output is indistinguishable from the legacy one.
    """
    a = CompactNFA(left)
    b = CompactNFA(right)
    start = (a.initial, b.initial)
    seen = {start}
    stack = [start]
    transitions: dict[tuple[int, int], dict[Symbol, set]] = {}
    a_rows = a.rows
    b_rows = b.rows
    while stack:
        pair = stack.pop()
        pa, pb = pair
        row_b = b_rows[pb]
        if not row_b:
            continue
        row_out: dict[Symbol, set] = {}
        for symbol, targets_a in a_rows[pa].items():
            targets_b = row_b.get(symbol)
            if not targets_b:
                continue
            dsts = row_out.setdefault(symbol, set())
            for qa in iter_bits(targets_a):
                for qb in iter_bits(targets_b):
                    dst = (qa, qb)
                    dsts.add(dst)
                    if dst not in seen:
                        seen.add(dst)
                        stack.append(dst)
        if row_out:
            transitions[pair] = row_out
    a_accepting = a.finals_closed
    b_accepting = b.finals_closed
    a_states = a.states
    b_states = b.states
    lowered = {pair: (a_states[pair[0]], b_states[pair[1]]) for pair in seen}
    finals = {
        lowered[(qa, qb)]
        for (qa, qb) in seen
        if (a_accepting >> qa) & 1 and (b_accepting >> qb) & 1
    }
    lowered_transitions = {
        lowered[src]: {
            symbol: {lowered[dst] for dst in dsts} for symbol, dsts in row.items()
        }
        for src, row in transitions.items()
    }
    return NFA(
        set(lowered.values()),
        left.alphabet | right.alphabet,
        lowered_transitions,
        lowered[start],
        finals,
    )
