"""Unranked tree automata (Section 2.1.3): nUTA and dUTA.

A nondeterministic unranked tree automaton is a quadruple
``A = <K, Sigma, Delta, F>`` where ``Delta`` maps pairs ``(state, label)``
to *horizontal* NFAs over the state set ``K``.  A tree is accepted when its
nodes can be labelled with states so that the root gets a final state and
every node's children-state string is accepted by the horizontal automaton
of its own state and label.

The decision procedures needed by the paper (emptiness, inclusion and
equivalence of regular tree languages -- ``equiv[R-EDTD]`` is
EXPTIME-complete, Theorem 4.7) are implemented by a *joint reachable-subset
construction*: the bottom-up deterministic view of an nUTA assigns to every
tree the set of states assignable to it, and the construction enumerates all
jointly reachable tuples of such sets for several automata at once, together
with witness trees.  This is the determinisation of [15] (TATA) specialised
to what the library needs, and it also powers the EDTD normalisation of
Section 4.3.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

from repro.automata.nfa import NFA
from repro.trees.document import Tree

State = str
Label = str

#: A *profile* is the tuple of "assignable state sets", one per automaton,
#: that some tree jointly produces in a family of automata.
Profile = tuple[frozenset[State], ...]


class UnrankedTreeAutomaton:
    """A nondeterministic unranked tree automaton (nUTA)."""

    __slots__ = ("states", "alphabet", "horizontal", "finals")

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Label],
        horizontal: Mapping[tuple[State, Label], NFA],
        finals: Iterable[State],
    ) -> None:
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.finals = frozenset(finals)
        self.horizontal = dict(horizontal)
        self._validate()

    def _validate(self) -> None:
        if not self.finals <= self.states:
            raise ValueError("final states must be states")
        for (state, label), nfa in self.horizontal.items():
            if state not in self.states:
                raise ValueError(f"horizontal automaton attached to unknown state {state!r}")
            if label not in self.alphabet:
                raise ValueError(f"horizontal automaton attached to unknown label {label!r}")
            extra = nfa.alphabet - self.states
            if extra:
                raise ValueError(
                    f"horizontal automaton for {(state, label)!r} reads non-states {sorted(extra)!r}"
                )

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """States plus the sizes of all horizontal automata (Table 2 measure)."""
        return len(self.states) + sum(nfa.size for nfa in self.horizontal.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnrankedTreeAutomaton(states={len(self.states)}, labels={len(self.alphabet)}, "
            f"rules={len(self.horizontal)})"
        )

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def _horizontal_accepts_sets(self, nfa: NFA, child_sets: Sequence[frozenset[State]]) -> bool:
        """Does ``nfa`` accept some word ``w`` with ``w[i]`` drawn from ``child_sets[i]``?"""
        current = nfa.epsilon_closure({nfa.initial})
        for child_set in child_sets:
            moved: set = set()
            for symbol in child_set:
                moved |= nfa.step(current, symbol)
            current = frozenset(moved)
            if not current:
                return False
        return bool(current & nfa.finals)

    def possible_states(self, tree: Tree) -> frozenset[State]:
        """The set of states assignable to the root of ``tree`` (bottom-up)."""
        child_sets = [self.possible_states(child) for child in tree.children]
        if any(not child_set for child_set in child_sets):
            return frozenset()
        result = set()
        for state in self.states:
            nfa = self.horizontal.get((state, tree.label))
            if nfa is None:
                continue
            if self._horizontal_accepts_sets(nfa, child_sets):
                result.add(state)
        return frozenset(result)

    def accepts(self, tree: Tree) -> bool:
        """Membership of ``tree`` in the tree language ``[A]``."""
        return bool(self.possible_states(tree) & self.finals)

    def __contains__(self, tree: Tree) -> bool:
        return self.accepts(tree)


# --------------------------------------------------------------------------- #
# joint reachable-subset construction
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProfileWitness:
    """A jointly reachable profile together with a tree that realises it."""

    profile: Profile
    witness: Tree


def _initial_components(
    automata: Sequence[UnrankedTreeAutomaton], label: Label
) -> tuple[tuple[frozenset, ...], ...]:
    """Initial horizontal simulation state, per automaton and per state."""
    components = []
    for automaton in automata:
        per_state = []
        for state in sorted(automaton.states):
            nfa = automaton.horizontal.get((state, label))
            if nfa is None:
                per_state.append(frozenset())
            else:
                per_state.append(nfa.epsilon_closure({nfa.initial}))
        components.append(tuple(per_state))
    return tuple(components)


def _advance_components(
    automata: Sequence[UnrankedTreeAutomaton],
    label: Label,
    components: tuple[tuple[frozenset, ...], ...],
    profile: Profile,
) -> tuple[tuple[frozenset, ...], ...]:
    """Advance every horizontal simulation by one child whose profile is given."""
    new_components = []
    for automaton_index, automaton in enumerate(automata):
        per_state = []
        child_states = profile[automaton_index]
        for state_index, state in enumerate(sorted(automaton.states)):
            nfa = automaton.horizontal.get((state, label))
            current = components[automaton_index][state_index]
            if nfa is None or not current:
                per_state.append(frozenset())
                continue
            moved: set = set()
            for symbol in child_states:
                moved |= nfa.step(current, symbol)
            per_state.append(frozenset(moved))
        new_components.append(tuple(per_state))
    return tuple(new_components)


def _profile_of_components(
    automata: Sequence[UnrankedTreeAutomaton],
    label: Label,
    components: tuple[tuple[frozenset, ...], ...],
) -> Profile:
    """The profile produced by a node with the given final horizontal components."""
    profile = []
    for automaton_index, automaton in enumerate(automata):
        assignable = set()
        for state_index, state in enumerate(sorted(automaton.states)):
            nfa = automaton.horizontal.get((state, label))
            if nfa is None:
                continue
            if components[automaton_index][state_index] & nfa.finals:
                assignable.add(state)
        profile.append(frozenset(assignable))
    return tuple(profile)


def joint_reachable_profiles(
    automata: Sequence[UnrankedTreeAutomaton],
    max_profiles: int = 200_000,
) -> dict[Profile, Tree]:
    """All profiles jointly reachable by some tree, with one witness tree each.

    This is the joint determinisation of the automata: a profile
    ``(S_1, ..., S_m)`` is in the result iff there exists a tree ``t`` such
    that, for every ``i``, ``S_i`` is exactly the set of states automaton
    ``i`` can assign to ``t``.  The witness tree realises the profile.

    ``max_profiles`` bounds the construction (it is exponential in the worst
    case, which is exactly the EXPTIME lower bound of Theorem 4.7).
    """
    labels = sorted(set().union(*[automaton.alphabet for automaton in automata])) if automata else []
    known: dict[Profile, Tree] = {}
    changed = True
    while changed:
        changed = False
        for label in labels:
            for profile, witness in _explore_label(automata, label, known).items():
                if profile not in known:
                    known[profile] = witness
                    changed = True
                    if len(known) > max_profiles:
                        raise MemoryError(
                            "joint reachable-subset construction exceeded its profile budget"
                        )
    return known


def _explore_label(
    automata: Sequence[UnrankedTreeAutomaton],
    label: Label,
    known: dict[Profile, Tree],
) -> dict[Profile, Tree]:
    """Profiles producible by a node labelled ``label`` whose children realise known profiles."""
    start = _initial_components(automata, label)
    # Each queue entry carries the horizontal components and the child forest
    # (as a tuple of witness trees) used to reach them.
    queue: deque[tuple[tuple, tuple[Tree, ...]]] = deque([(start, ())])
    seen = {start}
    results: dict[Profile, Tree] = {}
    known_items = list(known.items())
    while queue:
        components, forest = queue.popleft()
        profile = _profile_of_components(automata, label, components)
        if profile not in results and any(profile):
            results[profile] = Tree(label, forest)
        elif profile not in results:
            # Even an all-empty profile is informative for inclusion checks
            # (it witnesses a tree that none of the automata can process),
            # but it never needs more than one representative.
            results[profile] = Tree(label, forest)
        for child_profile, child_witness in known_items:
            new_components = _advance_components(automata, label, components, child_profile)
            if new_components in seen:
                continue
            if all(not per_state for per_automaton in new_components for per_state in per_automaton):
                # Every horizontal simulation is dead; no need to explore further.
                seen.add(new_components)
                continue
            seen.add(new_components)
            queue.append((new_components, forest + (child_witness,)))
    return results


# --------------------------------------------------------------------------- #
# decision procedures
# --------------------------------------------------------------------------- #


def tree_language_is_empty(automaton: UnrankedTreeAutomaton) -> bool:
    """Decide ``[A] = ∅``."""
    profiles = joint_reachable_profiles([automaton])
    return not any(profile[0] & automaton.finals for profile in profiles)


def tree_language_counterexample(
    left: UnrankedTreeAutomaton, right: UnrankedTreeAutomaton
) -> Optional[Tree]:
    """Return a tree in ``[left] − [right]`` or ``None`` if ``[left] ⊆ [right]``."""
    profiles = joint_reachable_profiles([left, right])
    for (left_states, right_states), witness in profiles.items():
        if (left_states & left.finals) and not (right_states & right.finals):
            return witness
    return None


def tree_language_includes(big: UnrankedTreeAutomaton, small: UnrankedTreeAutomaton) -> bool:
    """Decide ``[small] ⊆ [big]``."""
    return tree_language_counterexample(small, big) is None


def tree_language_equivalent(left: UnrankedTreeAutomaton, right: UnrankedTreeAutomaton) -> bool:
    """Decide ``[left] = [right]`` (``equiv`` for regular tree languages)."""
    profiles = joint_reachable_profiles([left, right])
    for left_states, right_states in profiles:
        left_accepts = bool(left_states & left.finals)
        right_accepts = bool(right_states & right.finals)
        if left_accepts != right_accepts:
            return False
    return True


def tree_language_equivalence_counterexample(
    left: UnrankedTreeAutomaton, right: UnrankedTreeAutomaton
) -> Optional[tuple[str, Tree]]:
    """A witness of non-equivalence: ``("left-only" | "right-only", tree)``."""
    profiles = joint_reachable_profiles([left, right])
    for (left_states, right_states), witness in profiles.items():
        left_accepts = bool(left_states & left.finals)
        right_accepts = bool(right_states & right.finals)
        if left_accepts and not right_accepts:
            return ("left-only", witness)
        if right_accepts and not left_accepts:
            return ("right-only", witness)
    return None


def deterministic_state_assignments(
    automaton: UnrankedTreeAutomaton,
) -> dict[frozenset[State], Tree]:
    """The reachable states of the bottom-up determinisation of ``automaton``.

    Each key is a reachable "subset state" of the dUTA obtained by the
    standard determinisation (Section 4.3 uses this to *normalise* an EDTD);
    the value is a witness tree realising it.
    """
    profiles = joint_reachable_profiles([automaton])
    return {profile[0]: witness for profile, witness in profiles.items() if profile[0]}
