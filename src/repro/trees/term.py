"""The compact term notation for trees used throughout the paper.

Examples from the paper::

    s0(a f1 b(f2))
    s(a c(d d) b(d(e f)))
    eurostat(f1, nationalIndex(f2), f3)

Labels are identifiers; children are separated by whitespace or commas.  The
notation is symmetric: :func:`format_term` produces text that
:func:`parse_term` reads back.

Note that the paper occasionally juxtaposes single-character labels without
spaces (``c(dd)``); because element names in real schemas are longer than
one character, this parser requires explicit separators (write ``c(d d)``),
which keeps the grammar unambiguous.
"""

from __future__ import annotations

import re

from repro.errors import TermSyntaxError
from repro.trees.document import Tree

_TOKEN = re.compile(r"\s*([A-Za-z_#][A-Za-z0-9_\-\.]*|[(),])")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN.match(text, position)
        if not match:
            raise TermSyntaxError(f"unexpected character {text[position]!r} at position {position} in {text!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], text: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._text = text

    def peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def pop(self) -> str:
        token = self.peek()
        if token is None:
            raise TermSyntaxError(f"unexpected end of input in {self._text!r}")
        self._pos += 1
        return token

    def parse_tree(self) -> Tree:
        label = self.pop()
        if label in {"(", ")", ","}:
            raise TermSyntaxError(f"expected a label but found {label!r} in {self._text!r}")
        children: list[Tree] = []
        if self.peek() == "(":
            self.pop()
            while True:
                token = self.peek()
                if token == ")":
                    self.pop()
                    break
                if token == ",":
                    self.pop()
                    continue
                if token is None:
                    raise TermSyntaxError(f"missing ')' in {self._text!r}")
                children.append(self.parse_tree())
        return Tree(label, tuple(children))

    def parse(self) -> Tree:
        tree = self.parse_tree()
        if self.peek() is not None:
            raise TermSyntaxError(
                f"unexpected trailing token {self.peek()!r} in {self._text!r}"
            )
        return tree


def parse_term(text: str) -> Tree:
    """Parse the paper's term notation into a :class:`Tree`.

    >>> parse_term("s0(a f1 b(f2))").size
    5
    """
    tokens = _tokenize(text)
    if not tokens:
        raise TermSyntaxError("empty term")
    return _Parser(tokens, text).parse()


def parse_forest(text: str) -> tuple[Tree, ...]:
    """Parse a whitespace/comma-separated sequence of terms as a forest."""
    tokens = _tokenize(text)
    parser = _Parser(tokens, text)
    forest: list[Tree] = []
    while parser.peek() is not None:
        if parser.peek() == ",":
            parser.pop()
            continue
        forest.append(parser.parse_tree())
    return tuple(forest)


def format_term(tree: Tree) -> str:
    """Render a tree in the paper's term notation.

    >>> from repro.trees.document import Tree
    >>> format_term(Tree.node("s", "a", Tree.node("b", "c")))
    's(a b(c))'
    """
    if tree.is_leaf:
        return tree.label
    inner = " ".join(format_term(child) for child in tree.children)
    return f"{tree.label}({inner})"
