"""Conversion between :class:`~repro.trees.document.Tree` values and XML text.

The paper abstracts away attributes and character data (Section 2: "a
widespread abstraction of XML documents ... focusing on document
structure"), so serialisation emits pure element structure and parsing
ignores text content and attributes.  The standard library parser is used;
no third-party XML dependency is required.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.errors import InvalidXMLError
from repro.trees.document import Tree


def tree_to_element(tree: Tree) -> ET.Element:
    """Convert a tree to an :class:`xml.etree.ElementTree.Element`."""
    element = ET.Element(tree.label)
    for child in tree.children:
        element.append(tree_to_element(child))
    return element


def element_to_tree(element: ET.Element) -> Tree:
    """Convert an element (ignoring text and attributes) to a tree."""
    return Tree(element.tag, tuple(element_to_tree(child) for child in element))


def tree_to_xml(tree: Tree, pretty: bool = False) -> str:
    """Serialise a tree as XML text.

    With ``pretty=True`` the output is indented, which is what the examples
    print for human inspection.
    """
    raw = ET.tostring(tree_to_element(tree), encoding="unicode")
    if not pretty:
        return raw
    parsed = minidom.parseString(raw)
    pretty_text = parsed.toprettyxml(indent="  ")
    # Drop the XML declaration and blank lines added by minidom.
    lines = [line for line in pretty_text.splitlines() if line.strip() and not line.startswith("<?xml")]
    return "\n".join(lines)


def tree_from_xml(text: str | bytes) -> Tree:
    """Parse XML text into a tree (attributes and character data are dropped).

    Malformed input raises the library's typed
    :class:`~repro.errors.InvalidXMLError` instead of the stdlib's
    ``xml.etree.ElementTree.ParseError``, so callers (the runtime, the
    service) never have to special-case stdlib exceptions.
    """
    try:
        return element_to_tree(ET.fromstring(text))
    except ET.ParseError as error:
        raise InvalidXMLError(f"malformed XML: {error}") from None
