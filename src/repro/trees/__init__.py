"""Unranked ordered trees and unranked tree automata (Sections 2.1.1 and 2.1.3).

XML documents are abstracted, as in the paper, to finite ordered unranked
trees with labels over an alphabet of element names.  The package provides

* :mod:`repro.trees.document` -- the immutable :class:`Tree` value type with
  the paper's node predicates (``lab``, ``child-str``, ``anc-str``,
  ``tree(x)``, ``‖t‖``),
* :mod:`repro.trees.term` -- the compact term notation used throughout the
  paper (``s0(a f1 b(f2))``),
* :mod:`repro.trees.xml_io` -- conversion to and from actual XML text,
* :mod:`repro.trees.automata` -- nondeterministic and bottom-up deterministic
  unranked tree automata (nUTA / dUTA) with membership, emptiness, inclusion
  and equivalence decided by joint reachable-subset construction.
"""

from repro.trees.document import Tree
from repro.trees.term import parse_term, format_term
from repro.trees.xml_io import tree_from_xml, tree_to_xml
from repro.trees.automata import (
    UnrankedTreeAutomaton,
    tree_language_equivalent,
    tree_language_includes,
    tree_language_is_empty,
)

__all__ = [
    "Tree",
    "parse_term",
    "format_term",
    "tree_from_xml",
    "tree_to_xml",
    "UnrankedTreeAutomaton",
    "tree_language_equivalent",
    "tree_language_includes",
    "tree_language_is_empty",
]
