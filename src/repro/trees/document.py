"""The tree abstraction of XML documents (Section 2.1.1).

A :class:`Tree` is a finite, ordered, unranked tree with string labels.  It
is an immutable value type: two trees compare equal iff they have the same
shape and labels, which is exactly the document-equality notion the paper
works with (data values are abstracted away).

Nodes are addressed by *paths*: tuples of child indices from the root, so
``()`` is the root and ``(1, 0)`` is the first child of the second child of
the root.  The paper's node predicates are provided both as methods on the
tree (taking a path) and as convenience accessors on subtrees.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Optional

Path = tuple[int, ...]


@dataclass(frozen=True)
class Tree:
    """An ordered unranked tree with labels over an alphabet of element names."""

    label: str
    children: tuple["Tree", ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.label, str) or not self.label:
            raise ValueError("a tree label must be a non-empty string")
        object.__setattr__(self, "children", tuple(self.children))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def leaf(cls, label: str) -> "Tree":
        """A single leaf node."""
        return cls(label, ())

    @classmethod
    def node(cls, label: str, *children: "Tree | str") -> "Tree":
        """Build a node; string children are promoted to leaves.

        >>> Tree.node("s", "a", Tree.node("b", "c")).size
        4
        """
        promoted = tuple(child if isinstance(child, Tree) else Tree.leaf(child) for child in children)
        return cls(label, promoted)

    # ------------------------------------------------------------------ #
    # paper predicates
    # ------------------------------------------------------------------ #

    @property
    def is_leaf(self) -> bool:
        """``child-str(x) = ε`` -- the node has no children."""
        return not self.children

    @property
    def size(self) -> int:
        """The number of nodes ``‖t‖``."""
        return 1 + sum(child.size for child in self.children)

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path (a single node has height 1)."""
        if not self.children:
            return 1
        return 1 + max(child.height for child in self.children)

    def child_str(self, path: Path = ()) -> tuple[str, ...]:
        """``child-str(x)``: the labels of the children of the node at ``path``."""
        return tuple(child.label for child in self.subtree(path).children)

    def anc_str(self, path: Path = ()) -> tuple[str, ...]:
        """``anc-str(x)``: the labels on the path from the root to the node (inclusive)."""
        labels = [self.label]
        current = self
        for index in path:
            current = current.children[index]
            labels.append(current.label)
        return tuple(labels)

    def lab(self, path: Path = ()) -> str:
        """``lab(x)``: the label of the node at ``path``."""
        return self.subtree(path).label

    def subtree(self, path: Path = ()) -> "Tree":
        """``tree(x)``: the subtree rooted at the node at ``path``."""
        current = self
        for index in path:
            try:
                current = current.children[index]
            except IndexError as error:
                raise KeyError(f"no node at path {path!r}") from error
        return current

    def parent_path(self, path: Path) -> Optional[Path]:
        """The path of the parent node, or ``None`` for the root."""
        if not path:
            return None
        return path[:-1]

    # ------------------------------------------------------------------ #
    # traversals
    # ------------------------------------------------------------------ #

    def paths(self) -> Iterator[Path]:
        """All node paths in document (pre-)order."""
        yield ()
        for index, child in enumerate(self.children):
            for sub_path in child.paths():
                yield (index,) + sub_path

    def nodes(self) -> Iterator[tuple[Path, "Tree"]]:
        """All ``(path, subtree)`` pairs in document order."""
        for path in self.paths():
            yield path, self.subtree(path)

    def labels(self) -> frozenset[str]:
        """The set of labels occurring in the tree."""
        return frozenset(node.label for _path, node in self.nodes())

    def leaves(self) -> Iterator[tuple[Path, "Tree"]]:
        """All leaf nodes with their paths, in document order."""
        for path, node in self.nodes():
            if node.is_leaf:
                yield path, node

    def occurrences(self, label: str) -> list[Path]:
        """Paths of all nodes carrying ``label``."""
        return [path for path, node in self.nodes() if node.label == label]

    # ------------------------------------------------------------------ #
    # functional updates
    # ------------------------------------------------------------------ #

    def replace(self, path: Path, replacement: "Tree") -> "Tree":
        """Return a copy of the tree with the subtree at ``path`` replaced.

        This realises the *subtree exchange* operations used by the closure
        characterisations of DTDs and SDTDs (Definitions 15 and 17).
        """
        if not path:
            return replacement
        index, rest = path[0], path[1:]
        if index >= len(self.children):
            raise KeyError(f"no node at path {path!r}")
        children = list(self.children)
        children[index] = children[index].replace(rest, replacement)
        return Tree(self.label, tuple(children))

    def splice(self, path: Path, forest: Sequence["Tree"]) -> "Tree":
        """Replace the node at ``path`` by a *forest* of trees (in order).

        This is the materialisation step of Section 2.3: a function node is
        replaced by the forest of trees directly connected to the root of the
        document returned by the resource.
        """
        if not path:
            raise ValueError("cannot splice a forest at the root position")
        parent = self.subtree(path[:-1])
        index = path[-1]
        if index >= len(parent.children):
            raise KeyError(f"no node at path {path!r}")
        new_children = parent.children[:index] + tuple(forest) + parent.children[index + 1 :]
        return self.replace(path[:-1], Tree(parent.label, new_children))

    def relabel(self, mapping: dict[str, str]) -> "Tree":
        """Apply a label-to-label mapping (labels missing from the map are kept).

        Used to apply the specialisation mapping ``mu`` of SDTDs/EDTDs to a
        witness tree (``t = mu(t')``, Definition 6).
        """
        return Tree(
            mapping.get(self.label, self.label),
            tuple(child.relabel(mapping) for child in self.children),
        )

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def __str__(self) -> str:
        from repro.trees.term import format_term

        return format_term(self)

    def pretty(self, indent: int = 0) -> str:
        """An indented multi-line rendering, useful in examples."""
        lines = ["  " * indent + self.label]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


def forest_size(forest: Iterable[Tree]) -> int:
    """Total number of nodes of a forest."""
    return sum(tree.size for tree in forest)
