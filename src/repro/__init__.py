"""repro -- a reproduction of "Distributed XML Design" (Abiteboul, Gottlob, Manna; PODS 2009).

The library implements the paper's theory of typing distributed XML
documents: kernel documents with docking points for external resources,
bottom-up consistency (``cons[S]`` and ``typeT(τn)``), and top-down typing
(sound / local / maximal-local / perfect typings, their verification and
existence problems), together with every substrate those results rely on
(string automata, regular expressions, unranked tree automata and the
R-DTD / R-SDTD / R-EDTD schema abstractions).

The convenient entry points live in :mod:`repro.api`; the most common ones
are re-exported lazily here so that ``import repro`` stays cheap and the
subpackages (``repro.automata``, ``repro.trees``, ...) can also be imported
directly without pulling in the whole library.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

#: Names re-exported from :mod:`repro.api` (resolved lazily, PEP 562).
_API_EXPORTS = (
    "BatchValidator",
    "CompilationEngine",
    "Design",
    "DesignReport",
    "DesignSession",
    "ExecutionConfig",
    "Federation",
    "analyze_design",
    "bottom_up_design",
    "dtd",
    "sdtd",
    "edtd",
    "get_default_engine",
    "kernel",
    "run_distributed_workload",
    "serve_design",
    "top_down_design",
    "tree",
    "use_engine",
    "validate_stream",
    "ServiceHandle",
    "StreamingValidator",
    "ValidationRuntime",
    "WorkloadReport",
)

__all__ = list(_API_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
