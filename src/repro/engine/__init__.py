"""The compiled-schema engine: memoized automaton compilation and batch validation.

Every decision procedure of the paper -- consistency ``cons[S]``, the
perfect-automaton construction ``Ω(A, w)``, the existence problems ``∃-loc``
and ``∃-ml``, and plain document validation -- bottoms out in the same
handful of automaton operations: epsilon removal, subset construction,
minimisation, and pairwise inclusion / equivalence.  The seed recompiled
these from scratch at every call site; this package provides the shared
compilation seam instead:

* :mod:`repro.engine.fingerprint` content-addresses automata with a
  canonical fingerprint over states, transitions and final states;
* :mod:`repro.engine.cache` is the bounded LRU cache with hit / miss /
  eviction statistics;
* :mod:`repro.engine.compilation` is the :class:`CompilationEngine` that
  memoizes the full NFA → ε-free → DFA → minimal-DFA pipeline plus pairwise
  inclusion / equivalence verdicts (string *and* tree languages);
* :mod:`repro.engine.batch` compiles a schema once and validates many
  documents against it in a single pass (:class:`BatchValidator`);
* :mod:`repro.engine.backends` is the pluggable validation-backend
  registry (``python`` / ``codegen`` / ``numpy``) and
  :mod:`repro.engine.codegen` the per-schema code generator behind the
  non-interpreted backends.

A process-wide default engine is installed at import time; the layers above
(:mod:`repro.schemas.content_model`, :mod:`repro.automata.equivalence`,
:mod:`repro.schemas.compare`, :mod:`repro.core`, :mod:`repro.distributed`)
route through it unless an explicit engine is injected (see
:func:`use_engine` and the ``engine`` parameter of
:func:`repro.api.analyze_design`).
"""

from __future__ import annotations

from repro.engine.backends import BACKENDS, available_backends, resolve_backend
from repro.engine.batch import BatchReport, BatchValidator, CompiledSchema
from repro.engine.codegen import CodegenValidator, codegen_validator_for
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.compilation import (
    CompilationEngine,
    get_default_engine,
    reset_default_engine,
    set_default_engine,
    use_engine,
)
from repro.engine.fingerprint import (
    alphabet_key,
    dfa_fingerprint,
    nfa_fingerprint,
    payload_fingerprint,
    tree_fingerprint,
    uta_fingerprint,
)

__all__ = [
    "BACKENDS",
    "BatchReport",
    "BatchValidator",
    "CacheStats",
    "CodegenValidator",
    "CompilationEngine",
    "CompiledSchema",
    "LRUCache",
    "alphabet_key",
    "available_backends",
    "codegen_validator_for",
    "dfa_fingerprint",
    "get_default_engine",
    "nfa_fingerprint",
    "payload_fingerprint",
    "resolve_backend",
    "reset_default_engine",
    "set_default_engine",
    "tree_fingerprint",
    "use_engine",
    "uta_fingerprint",
]
