"""Pluggable validation backends: ``python``, ``codegen``, ``numpy``.

A *backend* decides how a compiled schema turns documents into verdicts;
it never changes **what** the verdict is.  The interpreted ``python``
kernel (:class:`~repro.engine.batch.CompiledSchema` and
:class:`~repro.streaming.machine.StreamingRun`) is the differential
oracle: every other backend must be verdict-identical to it on every
input, including malformed and truncated payloads (see
``tests/engine/test_backend_identity.py``).

* ``python`` -- the interpreted big-int bitset loops.  O(depth) streaming
  memory, no codegen, always available.  The default.
* ``codegen`` -- per-schema generated validator functions
  (:mod:`repro.engine.codegen`): the whole-payload hot path parses with
  the bare C parser and folds the element tree through a generated
  recursive mask function with per-label memo tables.  ~3x faster on the
  benchmark workloads; trades the streaming path's O(depth) bound for
  O(document) (the parser's element tree is materialized).
* ``numpy`` -- optional, vectorized many-documents-one-schema stepping
  for :meth:`BatchValidator.validate_many
  <repro.engine.batch.BatchValidator.validate_many>`; single-document and
  streaming calls delegate to the ``codegen`` fold.  Only available when
  numpy is installed.

Selection precedence: explicit API argument (``backend=...`` / the CLI
``--backend`` flag) > the ``REPRO_BACKEND`` environment variable >
``python``.  Unknown or unavailable backends raise a typed
:class:`~repro.errors.DesignError` naming the fallback.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import DesignError

__all__ = ["BACKENDS", "BACKEND_ENV_VAR", "available_backends", "resolve_backend"]

#: Every backend name the registry knows, available or not.
BACKENDS = ("python", "codegen", "numpy")

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Bound on the per-schema vectorized fold memo (distinct (label, word)
#: entries); cleared wholesale on overflow, evictions counted per kind.
VECTOR_MEMO_CAPACITY = 8192

#: Words stepped per vectorized slab, bounding the (W, S, n, n) tensors.
_SLAB = 256


def _numpy():
    """The numpy module, or ``None`` when it is not installed."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via monkeypatch
        return None
    return numpy


def available_backends() -> tuple:
    """The backends that can actually run in this interpreter."""
    return tuple(name for name in BACKENDS if name != "numpy" or _numpy() is not None)


def resolve_backend(requested: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete, available backend name.

    ``None`` falls back to ``$REPRO_BACKEND``, then to ``"python"``.
    Unknown names and unavailable backends raise
    :class:`~repro.errors.DesignError` naming the always-available
    fallback, so callers fail fast at construction time rather than deep
    inside a validation loop.
    """
    name = requested
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "python"
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise DesignError(
            f"unknown validation backend {name!r}: expected one of "
            f"{', '.join(BACKENDS)} (the interpreted fallback is 'python')"
        )
    if name == "numpy" and _numpy() is None:
        raise DesignError(
            "validation backend 'numpy' is unavailable (numpy is not installed); "
            "fall back to 'python' (the interpreted oracle) or 'codegen'"
        )
    return name


# ---------------------------------------------------------------------- #
# numpy: many-documents-one-schema vectorized stepping
# ---------------------------------------------------------------------- #


def _bits_to_bool(np, mask: int, length: int):
    out = np.zeros(length, dtype=bool)
    while mask:
        low = mask & -mask
        out[low.bit_length() - 1] = True
        mask ^= low
    return out


def _rule_tensors(np, compiled) -> dict:
    """Per-label boolean transition tensors, cached on the compiled schema.

    For each rule ``(state_bit, nfa)`` of a label: ``M[s, i, j]`` is true
    iff state ``i`` steps to ``j`` on symbol ``s`` (pre-closure
    convention, over the schema's shared state order), plus the initial
    one-hot vector and the closure-adjusted finals vector.
    """
    cache = getattr(compiled, "_numpy_rule_tensors", None)
    if cache is not None:
        return cache
    universe = len(compiled._state_order)
    cache = {}
    for label, rules in compiled._rules_by_label.items():
        entries = []
        for state_bit, nfa in rules:
            n = nfa.n
            delta = nfa.delta
            tensor = np.zeros((universe, n, n), dtype=bool)
            for symbol in range(min(universe, len(delta))):
                row = delta[symbol]
                for source in range(n):
                    mask = row[source]
                    while mask:
                        low = mask & -mask
                        tensor[symbol, source, low.bit_length() - 1] = True
                        mask ^= low
            initial = np.zeros(n, dtype=bool)
            initial[nfa.initial] = True
            finals = _bits_to_bool(np, nfa.finals_closed, n)
            entries.append((state_bit, tensor, initial, finals))
        cache[label] = tuple(entries)
    compiled._numpy_rule_tensors = cache
    return cache


def _fold_words_vectorized(np, entries, words: list) -> list:
    """Fold many distinct children-mask words of one label simultaneously.

    Every word is a tuple of child symbol-set bitmasks (all non-empty
    tuples).  Returns one possible-state mask per word.  All words of a
    slab step level-by-level through the same boolean tensors: a dead
    state set stays dead through padding steps, which matches the
    interpreted kernel's early ``moved == 0`` rejection exactly.
    """
    out = [0] * len(words)
    for start in range(0, len(words), _SLAB):
        slab = words[start : start + _SLAB]
        count = len(slab)
        longest = max(len(word) for word in slab)
        if not entries:
            continue
        universe = entries[0][1].shape[0]
        symbols = np.zeros((count, longest, universe), dtype=bool)
        active = np.zeros((count, longest), dtype=bool)
        for w, word in enumerate(slab):
            for t, mask in enumerate(word):
                active[w, t] = True
                while mask:
                    low = mask & -mask
                    symbols[w, t, low.bit_length() - 1] = True
                    mask ^= low
        for state_bit, tensor, initial, finals in entries:
            current = np.broadcast_to(initial, (count, initial.shape[0])).copy()
            for t in range(longest):
                # R[w] = union of the transition matrices of the symbols in
                # word w's t-th child mask; then one relation-composition
                # step for every word at once.
                reachable = np.any(
                    symbols[:, t, :, None, None] & tensor[None, :, :, :], axis=1
                )
                stepped = np.any(current[:, :, None] & reachable, axis=1)
                current = np.where(active[:, t, None], stepped, current)
            accepted = np.any(current & finals[None, :], axis=1)
            for w in range(count):
                if accepted[w]:
                    out[start + w] |= state_bit
    return out


def validate_many_vectorized(compiled, documents: list) -> list:
    """Verdicts for many documents of one schema, numpy-vectorized.

    Nodes are grouped by height across the whole batch; at each height the
    distinct ``(label, children-mask word)`` pairs are folded in one
    vectorized pass and shared through a bounded memo, so repeated
    substructure across documents is stepped once.  Verdicts are
    bit-identical to :meth:`CompiledSchema.accepts
    <repro.engine.batch.CompiledSchema.accepts>` per document.
    """
    np = _numpy()
    if np is None:
        raise DesignError(
            "validation backend 'numpy' is unavailable (numpy is not installed); "
            "fall back to 'python' (the interpreted oracle) or 'codegen'"
        )
    tensors = _rule_tensors(np, compiled)
    memo = getattr(compiled, "_numpy_fold_memo", None)
    if memo is None:
        memo = {}
        compiled._numpy_fold_memo = memo
    stats = compiled.engine.stats.kind_counters("numpy-fold")

    # Heights across the whole batch (iterative: documents can be deep).
    height: dict[int, int] = {}
    by_height: dict[int, list] = {}
    for root in documents:
        if id(root) in height:
            continue
        stack = [(root, False)]
        while stack:
            node, ready = stack.pop()
            if ready:
                level = 0
                for child in node.children:
                    child_height = height[id(child)] + 1
                    if child_height > level:
                        level = child_height
                height[id(node)] = level
                by_height.setdefault(level, []).append(node)
            elif id(node) not in height:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))

    masks: dict[int, int] = {}
    empty_word: dict[str, int] = {}
    for level in sorted(by_height):
        pending: dict[tuple, int] = {}
        nodes = by_height[level]
        keys = []
        for node in nodes:
            if not node.children:
                label = node.label
                mask = empty_word.get(label)
                if mask is None:
                    mask = 0
                    for state_bit, _tensor, initial, finals in tensors.get(label, ()):
                        if np.any(initial & finals):
                            mask |= state_bit
                    empty_word[label] = mask
                masks[id(node)] = mask
                keys.append(None)
                continue
            word = tuple(masks[id(child)] for child in node.children)
            key = (node.label, word)
            keys.append(key)
            if key not in memo and key not in pending:
                pending[key] = len(pending)
        if pending:
            by_label: dict[str, list] = {}
            for label, word in pending:
                by_label.setdefault(label, []).append(word)
            for label, words in by_label.items():
                entries = tensors.get(label, ())
                folded = (
                    _fold_words_vectorized(np, entries, words)
                    if entries
                    else [0] * len(words)
                )
                if len(memo) + len(words) > VECTOR_MEMO_CAPACITY:
                    memo.clear()
                    stats.evictions += 1
                stats.misses += len(words)
                for word, mask in zip(words, folded):
                    memo[(label, word)] = mask
        for node, key in zip(nodes, keys):
            if key is not None:
                masks[id(node)] = memo[key]

    finals_mask = compiled._finals_mask
    return [bool(masks[id(document)] & finals_mask) for document in documents]
