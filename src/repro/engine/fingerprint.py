"""Canonical fingerprints for content-addressing automata.

A fingerprint is a short hex digest over a canonical serialisation of an
automaton's states, transitions, finals and alphabet.  Two automata with the
same fingerprint are structurally identical up to the canonical state
renaming, hence define the same language -- which is what makes fingerprints
sound both as cache keys and as an equivalence fast-path.

Canonicalisation orders states by breadth-first discovery from the initial
state (labels visited in sorted order, targets in a stable order), so the
fingerprint does not depend on the incidental iteration order of the
underlying dictionaries and sets.  For DFAs the breadth-first order is fully
determined by the transition structure, so the DFA fingerprint is invariant
under state renaming; for NFAs ties among targets of one transition are
broken by ``repr`` (the same stable order the rest of the library uses), so
the NFA fingerprint is stable for identically-constructed automata, which is
exactly the sharing that occurs when content models are reused across rules,
nodes and peers.
"""

from __future__ import annotations

import hashlib
from collections import deque
from collections.abc import Iterable

from repro.automata.dfa import DFA
from repro.automata.nfa import EPSILON, NFA
from repro.trees.document import Tree

#: Number of hex characters kept from the sha256 digest (128 bits).
_DIGEST_LENGTH = 32


def _digest(parts: Iterable[str]) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()[:_DIGEST_LENGTH]


def alphabet_key(symbols: Iterable[str]) -> str:
    """A canonical digest of a symbol set (used inside pairwise cache keys)."""
    return _digest(sorted(symbols))


def _nfa_state_order(nfa: NFA) -> dict[object, int]:
    """Canonical state indices: BFS from the initial state, then leftovers."""
    order: dict[object, int] = {nfa.initial: 0}
    queue = deque([nfa.initial])
    while queue:
        state = queue.popleft()
        row = nfa.transitions.get(state, {})
        for label in sorted(row):
            for target in sorted(row[label], key=repr):
                if target not in order:
                    order[target] = len(order)
                    queue.append(target)
    for state in sorted(nfa.states - order.keys(), key=repr):
        order[state] = len(order)
    return order


def nfa_fingerprint(nfa: NFA) -> str:
    """Content-address an NFA (epsilon transitions included verbatim)."""
    order = _nfa_state_order(nfa)
    triples = sorted(
        (order[src], label if label != EPSILON else "\x00ε", order[dst])
        for src, label, dst in nfa.iter_transitions()
    )
    parts = [
        "nfa",
        str(len(nfa.states)),
        ",".join(sorted(nfa.alphabet)),
        ",".join(str(order[state]) for state in sorted(nfa.finals, key=order.__getitem__)),
        ";".join(f"{src}>{label}>{dst}" for src, label, dst in triples),
    ]
    return _digest(parts)


def _dfa_state_order(dfa: DFA) -> dict[object, int]:
    order: dict[object, int] = {dfa.initial: 0}
    queue = deque([dfa.initial])
    symbols = sorted(dfa.alphabet)
    while queue:
        state = queue.popleft()
        for symbol in symbols:
            target = dfa.transitions.get((state, symbol))
            if target is not None and target not in order:
                order[target] = len(order)
                queue.append(target)
    for state in sorted(dfa.states - order.keys(), key=repr):
        order[state] = len(order)
    return order


def dfa_fingerprint(dfa: DFA) -> str:
    """Content-address a DFA; invariant under renaming of reachable states."""
    order = _dfa_state_order(dfa)
    triples = sorted(
        (order[src], symbol, order[dst]) for (src, symbol), dst in dfa.transitions.items()
    )
    parts = [
        "dfa",
        str(len(dfa.states)),
        ",".join(sorted(dfa.alphabet)),
        ",".join(str(order[state]) for state in sorted(dfa.finals, key=order.__getitem__)),
        ";".join(f"{src}>{symbol}>{dst}" for src, symbol, dst in triples),
    ]
    return _digest(parts)


def tree_fingerprint(tree: Tree) -> str:
    """Content-address a document (an ordered unranked tree).

    Two trees share a fingerprint iff they are equal as values (same shape,
    same labels) -- regardless of object identity.  This is what lets the
    distributed runtime detect that a peer re-published the *same content*
    as a fresh object (the common case after a round-trip through
    serialisation) and skip revalidating it.

    The canonical serialisation is ``arities ; label-lengths \\x01 labels``
    over the preorder traversal: the preorder arity sequence determines the
    shape, the length sequence splits the concatenated labels unambiguously
    (whatever characters they contain), and the metadata prefix is pure
    digits/punctuation so the first ``\\x01`` is always the delimiter.  It
    sits on the runtime's per-round hot path, so everything is built with
    bulk string operations and hashed in one call; the traversal is
    iterative because documents can be deeper than the recursion limit.
    """
    labels: list[str] = []
    arities: list[int] = []
    stack: list[Tree] = [tree]
    pop = stack.pop
    add_label = labels.append
    add_arity = arities.append
    while stack:
        node = pop()
        add_label(node.label)
        children = node.children
        add_arity(len(children))
        if children:
            stack.extend(reversed(children))
    blob = "%s;%s\x01%s" % (
        ",".join(map(str, arities)),
        ",".join(map(str, map(len, labels))),
        "".join(labels),
    )
    return hashlib.sha256(b"tree\x00" + blob.encode("utf-8")).hexdigest()[:_DIGEST_LENGTH]


def payload_fingerprint(payload: str | bytes) -> str:
    """Content-address a serialised document (its wire bytes).

    Hashing the bytes of a publication is an order of magnitude cheaper
    than parsing it -- sha256 runs at native speed -- so the runtime checks
    this digest *before* parsing and skips clean re-publications entirely.
    Byte equality is sufficient (not necessary) for content equality: a
    peer serialising the same document differently merely loses the
    skip, never soundness.
    """
    data = payload.encode("utf-8") if isinstance(payload, str) else payload
    return hashlib.sha256(b"payload\x00" + data).hexdigest()[:_DIGEST_LENGTH]


def payload_hasher():
    """An incremental hasher whose digest matches :func:`payload_fingerprint`.

    The streaming ingest path hashes a publication chunk by chunk while
    validating it -- feed each chunk with ``update()`` and finish with
    :func:`payload_hexdigest`; the result equals
    ``payload_fingerprint(b"".join(chunks))``, so streamed and whole-payload
    publications of the same bytes content-address identically.
    """
    return hashlib.sha256(b"payload\x00")


def payload_hexdigest(hasher) -> str:
    """Finish an incremental :func:`payload_hasher` (canonical truncation)."""
    return hasher.hexdigest()[:_DIGEST_LENGTH]


def uta_fingerprint(uta) -> str:
    """Content-address an unranked tree automaton through its horizontal NFAs.

    The digest covers the vertical states, the label alphabet, the final
    states and, for every ``(state, label)`` rule, the fingerprint of its
    horizontal automaton -- so two schemas compiled to structurally identical
    tree automata share one fingerprint (and hence one cached verdict for
    every tree-language comparison they take part in).
    """
    rules = sorted(
        (repr(state), label, nfa_fingerprint(nfa))
        for (state, label), nfa in uta.horizontal.items()
    )
    parts = [
        "uta",
        ",".join(sorted(map(repr, uta.states))),
        ",".join(sorted(uta.alphabet)),
        ",".join(sorted(map(repr, uta.finals))),
        ";".join(f"{state}@{label}:{digest}" for state, label, digest in rules),
    ]
    return _digest(parts)
