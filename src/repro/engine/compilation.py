"""The :class:`CompilationEngine`: one cache for every automaton pipeline.

The engine memoizes, behind a single LRU cache keyed by content fingerprints:

* the compilation pipeline ``NFA → ε-free NFA → DFA → minimal DFA``;
* one-unambiguity verdicts (the ``one-unamb[nRE]`` oracle of Theorems
  3.10/3.13);
* pairwise inclusion / equivalence of string languages, including the
  shortest counter-examples (``equiv[R]``, Definition 1);
* pairwise inclusion / equivalence of *tree* languages through the joint
  reachable-subset construction (``equiv[S]`` across schema languages).

Equal fingerprints mean structurally identical automata, so the engine also
answers equivalence queries on fingerprint equality alone without exploring
any product ("fingerprint fast-path").

A process-wide default engine exists so that the mid-level modules
(:mod:`repro.automata.equivalence`, :mod:`repro.schemas.compare`,
:mod:`repro.schemas.content_model`) stay dependency-free: they fetch the
default engine lazily.  Callers that want isolated caches or statistics
(e.g. :func:`repro.api.analyze_design` or the CLI) inject their own engine
with :func:`use_engine`.
"""

from __future__ import annotations

import threading as _threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Hashable, Iterable, Optional

from repro.automata.dfa import DFA
from repro.automata.equivalence import counterexample_inclusion_uncached
from repro.automata.kernel.inclusion import nfa_included, product_is_empty
from repro.automata.nfa import NFA, Symbol, Word
from repro.engine.cache import CacheStats, LRUCache
from repro.engine.fingerprint import (
    alphabet_key,
    dfa_fingerprint,
    nfa_fingerprint,
    uta_fingerprint,
)
from repro.trees.automata import (
    UnrankedTreeAutomaton,
    tree_language_counterexample,
)
from repro.trees.document import Tree

#: Default number of memoized results (automata, verdicts, witnesses).
DEFAULT_CAPACITY = 4096

#: Default number of pinned per-object entries (fingerprints, identity memos).
DEFAULT_IDENTITY_CAPACITY = 8192

#: Identity-memo kind for schema → tree-automaton conversion.  Shared by
#: :func:`repro.schemas.compare.schema_to_uta` and
#: :class:`repro.engine.batch.CompiledSchema` so both paths hit one memo.
SCHEMA_TO_UTA_KIND = "schema-to-uta"

#: Identity-memo kind for schema → streaming validator compilation (the
#: event-driven twin of :class:`~repro.engine.batch.CompiledSchema`; see
#: :func:`repro.streaming.machine.streaming_validator_for`).
STREAMING_MACHINE_KIND = "streaming-machine"

#: Memo kind for per-schema generated validator functions, keyed by the
#: UTA content fingerprint (see :mod:`repro.engine.codegen`).  Lives in
#: the bounded engine LRU, so entries are eviction-counted in
#: ``engine_stats`` like every other kind.
CODEGEN_VALIDATOR_KIND = "codegen-validator"


class _IdentityMemo:
    """A bounded per-object memo keyed by ``id``.

    The value pins the object itself, so an entry can never describe a
    different object than the one it was stored for (ids are only reused
    after the object is garbage collected, and a pinned object is not).

    Like :class:`~repro.engine.cache.LRUCache`, the memo is lock-free and
    relies on the GIL-atomicity of the individual ``OrderedDict``
    operations (the keys are ``(str, int)`` tuples, so no Python-level
    hash/eq callbacks run); a ``move_to_end`` racing an eviction only
    loses recency, and a duplicated compute produces an interchangeable
    value.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, int], tuple[Any, Any]] = OrderedDict()

    def get_or_compute(self, kind: str, obj: Any, thunk: Callable[[], Any]) -> tuple[Any, bool]:
        key = (kind, id(obj))
        entry = self._entries.get(key)
        if entry is not None and entry[0] is obj:
            try:
                self._entries.move_to_end(key)
            except KeyError:
                pass  # concurrently evicted; the value stays valid
            return entry[1], True
        value = thunk()
        self._entries[key] = (obj, value)
        if len(self._entries) > self.capacity:
            try:
                self._entries.popitem(last=False)
            except KeyError:
                pass  # a concurrent eviction got there first
        return value, False

    def clear(self) -> None:
        self._entries.clear()


class CompilationEngine:
    """Content-addressed compilation and comparison of automata.

    Parameters
    ----------
    capacity:
        Bound on the number of memoized compiled automata and verdicts.
    identity_capacity:
        Bound on the per-object fingerprint / identity memos.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        identity_capacity: int = DEFAULT_IDENTITY_CAPACITY,
    ) -> None:
        self.cache = LRUCache(capacity)
        self._identity = _IdentityMemo(identity_capacity)
        #: Equivalence queries answered by fingerprint equality alone.  Kept
        #: out of the LRU CacheStats so the reported hit rate stays a
        #: truthful property of the cache.
        self.fingerprint_fast_path_hits = 0

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def stats_report(self) -> str:
        report = self.stats.report()
        if self.fingerprint_fast_path_hits:
            report += f"\n  fingerprint fast-path: {self.fingerprint_fast_path_hits} equivalences"
        return report

    def reset_stats(self) -> None:
        self.stats.reset()
        self.fingerprint_fast_path_hits = 0

    def clear(self) -> None:
        """Drop every cached result (statistics are kept)."""
        self.cache.clear()
        self._identity.clear()

    # ------------------------------------------------------------------ #
    # fingerprints
    # ------------------------------------------------------------------ #

    def fingerprint(self, automaton: NFA | DFA | UnrankedTreeAutomaton) -> str:
        """The content fingerprint, memoized per object identity."""

        def compute() -> str:
            if isinstance(automaton, DFA):
                return dfa_fingerprint(automaton)
            if isinstance(automaton, NFA):
                return nfa_fingerprint(automaton)
            return uta_fingerprint(automaton)

        value, _cached = self._identity.get_or_compute("fingerprint", automaton, compute)
        return value

    def memo(self, kind: str, key: tuple[Hashable, ...], thunk: Callable[[], Any]) -> Any:
        """Memoize an arbitrary computation under ``(kind, *key)``."""
        return self.cache.get_or_compute((kind,) + key, thunk, kind)

    def memo_identity(self, kind: str, obj: Any, thunk: Callable[[], Any]) -> Any:
        """Memoize per object identity (for unhashable or mutable owners)."""
        value, cached = self._identity.get_or_compute(kind, obj, thunk)
        if cached:
            self.stats.record_hit(kind)
        else:
            self.stats.record_miss(kind)
        return value

    # ------------------------------------------------------------------ #
    # the compilation pipeline
    # ------------------------------------------------------------------ #

    def epsilon_free(self, nfa: NFA) -> NFA:
        """The ε-free automaton of ``[nfa]`` (cached)."""
        if not nfa.has_epsilon_transitions():
            return nfa
        return self.memo("eps-free", (self.fingerprint(nfa),), nfa.remove_epsilon)

    def determinize(self, nfa: NFA) -> DFA:
        """Subset construction over the ε-free automaton (cached)."""
        fingerprint = self.fingerprint(nfa)
        return self.memo(
            "determinize", (fingerprint,), lambda: DFA.from_nfa(self.epsilon_free(nfa))
        )

    def minimal_dfa(self, nfa: NFA) -> DFA:
        """The full pipeline NFA → ε-free → DFA → minimal DFA (cached)."""
        fingerprint = self.fingerprint(nfa)
        return self.memo(
            "minimal-dfa", (fingerprint,), lambda: self.determinize(nfa).minimized()
        )

    def one_unambiguous(self, nfa: NFA) -> bool:
        """The ``one-unamb[nRE]`` oracle (cached verdict)."""
        from repro.automata.determinism import is_one_unambiguous

        return self.memo(
            "one-unambiguous", (self.fingerprint(nfa),), lambda: is_one_unambiguous(nfa)
        )

    # ------------------------------------------------------------------ #
    # pairwise string-language verdicts
    # ------------------------------------------------------------------ #

    def _pair_key(self, left: NFA, right: NFA, symbols: frozenset[Symbol]) -> tuple[str, str, str]:
        return (self.fingerprint(left), self.fingerprint(right), alphabet_key(symbols))

    def inclusion_verdict(
        self, left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None
    ) -> bool:
        """Decide ``[left] ⊆ [right]`` (cached antichain verdict, no witness).

        This is the boolean fast path: the kernel's antichain search never
        determinises the left side or materialises a complement automaton.
        Callers that need the witness word go through
        :meth:`inclusion_counterexample`, which keeps the legacy
        breadth-first product search as its (tie-breaking) oracle.
        """
        if self.fingerprint(left) == self.fingerprint(right):
            self.fingerprint_fast_path_hits += 1
            return True
        symbols = frozenset(alphabet) if alphabet is not None else left.alphabet | right.alphabet
        return self.memo(
            "inclusion-verdict",
            self._pair_key(left, right, symbols),
            lambda: nfa_included(left, right, symbols),
        )

    def inclusion_counterexample(
        self, left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None
    ) -> Optional[Word]:
        """A shortest word of ``[left] − [right]``, or ``None`` (cached).

        The cached antichain verdict answers the included case without any
        product search; only a *failed* inclusion pays for the legacy
        breadth-first search that extracts the shortest witness.
        """
        symbols = frozenset(alphabet) if alphabet is not None else left.alphabet | right.alphabet

        def compute() -> Optional[Word]:
            if self.inclusion_verdict(left, right, symbols):
                return None
            return counterexample_inclusion_uncached(left, right, symbols)

        return self.memo("inclusion", self._pair_key(left, right, symbols), compute)

    def includes(self, big: NFA, small: NFA, alphabet: Iterable[Symbol] | None = None) -> bool:
        """Decide ``[small] ⊆ [big]`` through the cached antichain verdict."""
        return self.inclusion_verdict(small, big, alphabet)

    def equivalent(self, left: NFA, right: NFA, alphabet: Iterable[Symbol] | None = None) -> bool:
        """Decide ``[left] = [right]`` with a fingerprint fast-path.

        Structurally identical automata (equal fingerprints) are equivalent
        without any product exploration; otherwise both cached inclusion
        verdicts are consulted.
        """
        if self.fingerprint(left) == self.fingerprint(right):
            self.fingerprint_fast_path_hits += 1
            return True
        return self.includes(right, left, alphabet) and self.includes(left, right, alphabet)

    def disjoint(self, left: NFA, right: NFA) -> bool:
        """Decide ``[left] ∩ [right] = ∅`` (cached on-the-fly product emptiness)."""
        key = tuple(sorted((self.fingerprint(left), self.fingerprint(right))))
        return self.memo(
            "disjoint", key, lambda: product_is_empty(left, right)
        )

    # ------------------------------------------------------------------ #
    # pairwise tree-language verdicts
    # ------------------------------------------------------------------ #

    def tree_inclusion_counterexample(
        self, small: UnrankedTreeAutomaton, big: UnrankedTreeAutomaton
    ) -> Optional[Tree]:
        """A tree of ``[small] − [big]``, or ``None`` (cached witness).

        Witness trees are immutable values, so sharing one cached tree across
        callers is safe.
        """
        return self.memo(
            "tree-inclusion",
            (self.fingerprint(small), self.fingerprint(big)),
            lambda: tree_language_counterexample(small, big),
        )

    def tree_includes(self, big: UnrankedTreeAutomaton, small: UnrankedTreeAutomaton) -> bool:
        return self.tree_inclusion_counterexample(small, big) is None

    def tree_equivalence_counterexample(
        self, left: UnrankedTreeAutomaton, right: UnrankedTreeAutomaton
    ) -> Optional[tuple[str, Tree]]:
        """A witness of tree-language non-equivalence, or ``None``."""
        if self.fingerprint(left) == self.fingerprint(right):
            self.fingerprint_fast_path_hits += 1
            return None
        witness = self.tree_inclusion_counterexample(left, right)
        if witness is not None:
            return ("left-only", witness)
        witness = self.tree_inclusion_counterexample(right, left)
        if witness is not None:
            return ("right-only", witness)
        return None

    def tree_equivalent(self, left: UnrankedTreeAutomaton, right: UnrankedTreeAutomaton) -> bool:
        return self.tree_equivalence_counterexample(left, right) is None


# --------------------------------------------------------------------------- #
# the default engine
# --------------------------------------------------------------------------- #

# The default engine is thread-local: each thread lazily gets its own engine,
# and use_engine() in one thread can never reroute (or permanently clobber)
# the engine another thread is working against.
_local = _threading.local()


def get_default_engine() -> CompilationEngine:
    """The engine the current thread routes through when none is injected."""
    engine = getattr(_local, "engine", None)
    if engine is None:
        engine = CompilationEngine()
        _local.engine = engine
    return engine


def set_default_engine(engine: CompilationEngine) -> CompilationEngine:
    """Install ``engine`` as the current thread's default; returns the previous one."""
    previous = get_default_engine()
    _local.engine = engine
    return previous


def reset_default_engine(
    capacity: int = DEFAULT_CAPACITY, identity_capacity: int = DEFAULT_IDENTITY_CAPACITY
) -> CompilationEngine:
    """Replace the default engine with a fresh one (used by tests and benchmarks)."""
    engine = CompilationEngine(capacity, identity_capacity)
    set_default_engine(engine)
    return engine


@contextmanager
def use_engine(engine: Optional[CompilationEngine]):
    """Temporarily install ``engine`` as this thread's default (no-op when ``None``).

    The injection is *ambient*: any library code the block calls into routes
    through ``engine`` via :func:`get_default_engine`.  That is the point
    (the whole call tree shares one cache), but it also means the block is
    not isolated from code that deliberately swaps the engine again inside
    it.  Thread-locality makes concurrent injections in different threads
    independent.
    """
    if engine is None:
        yield get_default_engine()
        return
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
