"""Batch validation: compile a schema once, validate many documents.

The seed's ``schema.validate(tree)`` rebuilt the unranked tree automaton
*and* re-ran every horizontal automaton with epsilon closures on every call
-- per document, per peer, per benchmark round.  :class:`CompiledSchema`
performs that work once: the tree automaton is built a single time, its
horizontal NFAs are lifted to the integer/bitset kernel through the
:class:`~repro.engine.compilation.CompilationEngine` (so peers whose local
types share content models share the compiled automata too), and the
bottom-up run loop works entirely on bitmasks -- a node's set of assignable
states is one ``int``, and each horizontal step is an OR over per-symbol
successor arrays, with no epsilon closures and no set objects.

:class:`BatchValidator` is the user-facing wrapper: it validates one
document, a batch of documents in a single pass, or produces a
:class:`BatchReport` for monitoring.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.automata.kernel.compact import CompactNFA, iter_bits
from repro.trees.automata import UnrankedTreeAutomaton
from repro.trees.document import Tree

#: Bound on the per-schema memo of already-validated document objects.
_DOCUMENT_MEMO_CAPACITY = 512


class CompiledSchema:
    """A schema compiled for repeated membership tests.

    Parameters
    ----------
    schema:
        Anything with a ``to_uta()`` method (DTD / SDTD / EDTD /
        NormalizedEDTD) or an :class:`UnrankedTreeAutomaton` directly.
    engine:
        The compilation engine used to epsilon-free the horizontal automata;
        defaults to the process-wide engine, so structurally identical
        content models compile once across all schemas and peers.
    """

    def __init__(self, schema, engine=None) -> None:
        from repro.engine.compilation import SCHEMA_TO_UTA_KIND, get_default_engine
        from repro.engine.fingerprint import alphabet_key

        self.engine = engine if engine is not None else get_default_engine()
        self.schema = schema
        if isinstance(schema, UnrankedTreeAutomaton):
            uta = schema
        else:
            # Same identity memo as repro.schemas.compare.schema_to_uta: a
            # schema object converts once no matter which layer asks.
            uta = self.engine.memo_identity(SCHEMA_TO_UTA_KIND, schema, schema.to_uta)
        self.uta = uta
        self.finals = uta.finals
        # One interning for the whole schema: the vertical states double as
        # the symbols every horizontal automaton reads, so a node's set of
        # assignable states *is* the child-symbol bitmask of its parent.
        self._state_order: tuple = tuple(sorted(uta.states, key=repr))
        self._state_bit = {state: 1 << i for i, state in enumerate(self._state_order)}
        self._finals_mask = 0
        for state in uta.finals:
            self._finals_mask |= self._state_bit[state]
        shared_alphabet = alphabet_key(map(repr, self._state_order))
        # Rules grouped by label: at a node labelled `l` only the (state, l)
        # horizontal automata can fire, so the bottom-up pass never scans the
        # full state set the way the seed's UTA membership did.  Each rule's
        # horizontal NFA is lifted to the kernel once, memoized by content
        # fingerprint, so peers whose local types share content models share
        # the compiled automata too.
        self._rules_by_label: dict[str, list[tuple[int, CompactNFA]]] = {}
        for (state, label), nfa in uta.horizontal.items():
            compiled = self.engine.memo(
                "compact-horizontal",
                (self.engine.fingerprint(nfa), shared_alphabet),
                lambda nfa=nfa: CompactNFA(nfa, self._state_order),
            )
            self._rules_by_label.setdefault(label, []).append(
                (self._state_bit[state], compiled)
            )
        self._document_memo: OrderedDict[int, tuple[Tree, frozenset]] = OrderedDict()

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    @staticmethod
    def _horizontal_accepts(compiled: CompactNFA, child_masks: Sequence[int]) -> bool:
        """Does ``compiled`` accept some word drawn from the child bitmasks?

        Runs the ε-free (pre-closure convention) simulation entirely on
        integers: the current state set and every child's symbol set are
        bitmasks, one step is an OR over the per-symbol successor arrays.
        """
        current = 1 << compiled.initial
        delta = compiled.delta
        for child_mask in child_masks:
            moved = 0
            symbols_left = child_mask
            while symbols_left:
                low = symbols_left & -symbols_left
                row = delta[low.bit_length() - 1]
                states_left = current
                while states_left:
                    state_low = states_left & -states_left
                    moved |= row[state_low.bit_length() - 1]
                    states_left ^= state_low
                symbols_left ^= low
            if not moved:
                return False
            current = moved
        return bool(current & compiled.finals_closed)

    def _possible_mask(self, tree: Tree) -> int:
        child_masks = []
        for child in tree.children:
            mask = self._possible_mask(child)
            if not mask:
                return 0
            child_masks.append(mask)
        rules = self._rules_by_label.get(tree.label)
        if not rules:
            return 0
        result = 0
        for state_bit, compiled in rules:
            if self._horizontal_accepts(compiled, child_masks):
                result |= state_bit
        return result

    def _possible_states(self, tree: Tree) -> frozenset:
        order = self._state_order
        return frozenset(order[index] for index in iter_bits(self._possible_mask(tree)))

    def possible_states(self, tree: Tree) -> frozenset:
        """The states assignable to the root of ``tree``, memoized per document.

        The memo is keyed by object identity with the document pinned, so
        re-validating the same (immutable) document object -- the common case
        for resource peers -- is a dictionary lookup.
        """
        entry = self._document_memo.get(id(tree))
        if entry is not None and entry[0] is tree:
            # Lock-free like the engine caches: move_to_end may race a
            # concurrent eviction (recency lost, value valid).
            try:
                self._document_memo.move_to_end(id(tree))
            except KeyError:
                pass
            self.engine.stats.record_hit("batch-validate")
            return entry[1]
        self.engine.stats.record_miss("batch-validate")
        states = self._possible_states(tree)
        self._document_memo[id(tree)] = (tree, states)
        if len(self._document_memo) > _DOCUMENT_MEMO_CAPACITY:
            try:
                self._document_memo.popitem(last=False)
            except KeyError:
                pass
            else:
                self.engine.stats.record_eviction("batch-validate")
        return states

    def accepts(self, tree: Tree) -> bool:
        return bool(self.possible_states(tree) & self.finals)


@dataclass(frozen=True)
class BatchReport:
    """The outcome of validating a batch of documents against one schema."""

    results: tuple[bool, ...]

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def valid_count(self) -> int:
        return sum(self.results)

    @property
    def all_valid(self) -> bool:
        return all(self.results)

    def __str__(self) -> str:
        return f"{self.valid_count}/{self.total} documents valid"


class BatchValidator:
    """Validate many documents (or many peers' documents) against one schema."""

    def __init__(self, schema, engine=None) -> None:
        self.compiled = CompiledSchema(schema, engine)

    @property
    def schema(self):
        return self.compiled.schema

    def validate(self, document: Tree) -> bool:
        """Membership of one document in the compiled schema's language."""
        return self.compiled.accepts(document)

    def validate_many(self, documents: Iterable[Tree]) -> list[bool]:
        """Validate a batch in one pass over the compiled automaton."""
        return [self.compiled.accepts(document) for document in documents]

    def report(self, documents: Iterable[Tree]) -> BatchReport:
        return BatchReport(tuple(self.validate_many(documents)))

    def first_invalid(self, documents: Iterable[Tree]) -> Optional[Tree]:
        """The first document rejected by the schema, or ``None``."""
        for document in documents:
            if not self.compiled.accepts(document):
                return document
        return None
