"""Batch validation: compile a schema once, validate many documents.

The seed's ``schema.validate(tree)`` rebuilt the unranked tree automaton
*and* re-ran every horizontal automaton with epsilon closures on every call
-- per document, per peer, per benchmark round.  :class:`CompiledSchema`
performs that work once: the tree automaton is built a single time, its
horizontal NFAs are lifted to the integer/bitset kernel through the
:class:`~repro.engine.compilation.CompilationEngine` (so peers whose local
types share content models share the compiled automata too), and the
bottom-up run loop works entirely on bitmasks -- a node's set of assignable
states is one ``int``, and each horizontal step is an OR over per-symbol
successor arrays, with no epsilon closures and no set objects.

:class:`BatchValidator` is the user-facing wrapper: it validates one
document, a batch of documents in a single pass, or produces a
:class:`BatchReport` for monitoring.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.automata.kernel.compact import CompactNFA, iter_bits
from repro.trees.automata import UnrankedTreeAutomaton
from repro.trees.document import Tree

#: Bound on the per-schema memo of already-validated document objects.
_DOCUMENT_MEMO_CAPACITY = 512

#: Bound on each automaton's dense union-row cache (distinct child masks).
_UNION_ROW_CAPACITY = 4096


def _union_row(compiled: CompactNFA, child_mask: int) -> list[int]:
    """The dense successor row of a child symbol-set: entry ``q`` is
    ``Δ(closure(q), child_mask)``.  Single-symbol masks (the overwhelming
    DTD case) alias the automaton's own delta row -- no copy."""
    delta = compiled.delta
    low = child_mask & -child_mask
    if low == child_mask:
        return delta[low.bit_length() - 1]
    row = list(delta[low.bit_length() - 1])
    symbols_left = child_mask ^ low
    while symbols_left:
        low = symbols_left & -symbols_left
        symbols_left ^= low
        extra = delta[low.bit_length() - 1]
        for index in range(len(row)):
            value = extra[index]
            if value:
                row[index] |= value
    return row


class CompiledSchema:
    """A schema compiled for repeated membership tests.

    Parameters
    ----------
    schema:
        Anything with a ``to_uta()`` method (DTD / SDTD / EDTD /
        NormalizedEDTD) or an :class:`UnrankedTreeAutomaton` directly.
    engine:
        The compilation engine used to epsilon-free the horizontal automata;
        defaults to the process-wide engine, so structurally identical
        content models compile once across all schemas and peers.
    backend:
        Validation backend name (``python`` / ``codegen`` / ``numpy``),
        resolved through :func:`~repro.engine.backends.resolve_backend`
        (explicit argument > ``$REPRO_BACKEND`` > ``python``).  The
        non-``python`` backends attach a generated validator
        (:mod:`repro.engine.codegen`) that :meth:`accepts` routes through;
        verdicts are bit-identical to the interpreted kernel.
    """

    def __init__(self, schema, engine=None, backend=None) -> None:
        from repro.engine.backends import resolve_backend
        from repro.engine.compilation import SCHEMA_TO_UTA_KIND, get_default_engine
        from repro.engine.fingerprint import alphabet_key

        self.engine = engine if engine is not None else get_default_engine()
        self.schema = schema
        self.backend = resolve_backend(backend)
        if isinstance(schema, UnrankedTreeAutomaton):
            uta = schema
        else:
            # Same identity memo as repro.schemas.compare.schema_to_uta: a
            # schema object converts once no matter which layer asks.
            uta = self.engine.memo_identity(SCHEMA_TO_UTA_KIND, schema, schema.to_uta)
        self.uta = uta
        self.finals = uta.finals
        # One interning for the whole schema: the vertical states double as
        # the symbols every horizontal automaton reads, so a node's set of
        # assignable states *is* the child-symbol bitmask of its parent.
        self._state_order: tuple = tuple(sorted(uta.states, key=repr))
        self._state_bit = {state: 1 << i for i, state in enumerate(self._state_order)}
        self._finals_mask = 0
        for state in uta.finals:
            self._finals_mask |= self._state_bit[state]
        shared_alphabet = alphabet_key(map(repr, self._state_order))
        # Rules grouped by label: at a node labelled `l` only the (state, l)
        # horizontal automata can fire, so the bottom-up pass never scans the
        # full state set the way the seed's UTA membership did.  Each rule's
        # horizontal NFA is lifted to the kernel once, memoized by content
        # fingerprint, so peers whose local types share content models share
        # the compiled automata too.
        self._rules_by_label: dict[str, list[tuple[int, CompactNFA]]] = {}
        for (state, label), nfa in uta.horizontal.items():
            compiled = self.engine.memo(
                "compact-horizontal",
                (self.engine.fingerprint(nfa), shared_alphabet),
                lambda nfa=nfa: CompactNFA(nfa, self._state_order),
            )
            self._rules_by_label.setdefault(label, []).append(
                (self._state_bit[state], compiled)
            )
        self._document_memo: OrderedDict[int, tuple[Tree, frozenset]] = OrderedDict()
        #: Union-row cache counters (plain int adds on the kernel hot path;
        #: surfaced in ``engine_stats`` under the ``union-row`` kind).
        self._union_stats = self.engine.stats.kind_counters("union-row")
        self._codegen = None
        #: Verdict memo of the generated path (identity-keyed like
        #: ``_document_memo``, same ``batch-validate`` stats kind; kept
        #: separate so the two paths never mix value types under one id).
        self._codegen_verdicts: OrderedDict[int, tuple[Tree, bool]] = OrderedDict()
        if self.backend != "python":
            from repro.engine.codegen import codegen_validator_for

            self._codegen = codegen_validator_for(self, self.engine)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    @staticmethod
    def _horizontal_accepts(
        compiled: CompactNFA, child_masks: Sequence[int], stats=None
    ) -> bool:
        """Does ``compiled`` accept some word drawn from the child bitmasks?

        Runs the ε-free (pre-closure convention) simulation entirely on
        integers: the current state set and every child's symbol set are
        bitmasks.  Each step reads one dense union row -- ``row[q] =
        Δ(closure(q), child_mask)`` -- from the automaton's bounded
        :attr:`~repro.automata.kernel.compact.CompactNFA.union_rows` cache
        (child symbol-sets recur constantly across sibling words), so the
        inner symbol scan runs only on a cache miss.  ``stats`` is an
        optional per-kind counter leaf (``union-row`` in ``engine_stats``)
        updated with plain int adds.
        """
        current = compiled.initial_mask
        if child_masks:
            union_rows = compiled.union_rows
            for child_mask in child_masks:
                row = union_rows.get(child_mask)
                if row is None:
                    if len(union_rows) >= _UNION_ROW_CAPACITY:
                        union_rows.clear()
                        if stats is not None:
                            stats.evictions += 1
                    row = union_rows[child_mask] = _union_row(compiled, child_mask)
                    if stats is not None:
                        stats.misses += 1
                elif stats is not None:
                    stats.hits += 1
                moved = 0
                states_left = current
                while states_left:
                    state_low = states_left & -states_left
                    moved |= row[state_low.bit_length() - 1]
                    states_left ^= state_low
                if not moved:
                    return False
                current = moved
        return bool(current & compiled.finals_closed)

    def _possible_mask(self, tree: Tree) -> int:
        child_masks = []
        for child in tree.children:
            mask = self._possible_mask(child)
            if not mask:
                return 0
            child_masks.append(mask)
        rules = self._rules_by_label.get(tree.label)
        if not rules:
            return 0
        result = 0
        accepts = self._horizontal_accepts
        stats = self._union_stats
        for state_bit, compiled in rules:
            if accepts(compiled, child_masks, stats):
                result |= state_bit
        return result

    def _possible_states(self, tree: Tree) -> frozenset:
        order = self._state_order
        return frozenset(order[index] for index in iter_bits(self._possible_mask(tree)))

    def possible_states(self, tree: Tree) -> frozenset:
        """The states assignable to the root of ``tree``, memoized per document.

        The memo is keyed by object identity with the document pinned, so
        re-validating the same (immutable) document object -- the common case
        for resource peers -- is a dictionary lookup.
        """
        entry = self._document_memo.get(id(tree))
        if entry is not None and entry[0] is tree:
            # Lock-free like the engine caches: move_to_end may race a
            # concurrent eviction (recency lost, value valid).
            try:
                self._document_memo.move_to_end(id(tree))
            except KeyError:
                pass
            self.engine.stats.record_hit("batch-validate")
            return entry[1]
        self.engine.stats.record_miss("batch-validate")
        states = self._possible_states(tree)
        self._document_memo[id(tree)] = (tree, states)
        if len(self._document_memo) > _DOCUMENT_MEMO_CAPACITY:
            try:
                self._document_memo.popitem(last=False)
            except KeyError:
                pass
            else:
                self.engine.stats.record_eviction("batch-validate")
        return states

    def accepts(self, tree: Tree) -> bool:
        if self._codegen is not None:
            # Same identity-keyed document memo contract as the interpreted
            # path (kind ``batch-validate``): re-validating the same pinned
            # document object is a dictionary hit, not a re-fold.
            memo = self._codegen_verdicts
            entry = memo.get(id(tree))
            if entry is not None and entry[0] is tree:
                try:
                    memo.move_to_end(id(tree))
                except KeyError:
                    pass
                self.engine.stats.record_hit("batch-validate")
                return entry[1]
            self.engine.stats.record_miss("batch-validate")
            verdict = self._codegen.validate_tree(tree)
            memo[id(tree)] = (tree, verdict)
            if len(memo) > _DOCUMENT_MEMO_CAPACITY:
                try:
                    memo.popitem(last=False)
                except KeyError:
                    pass
                else:
                    self.engine.stats.record_eviction("batch-validate")
            return verdict
        return bool(self.possible_states(tree) & self.finals)


@dataclass(frozen=True)
class BatchReport:
    """The outcome of validating a batch of documents against one schema."""

    results: tuple[bool, ...]

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def valid_count(self) -> int:
        return sum(self.results)

    @property
    def all_valid(self) -> bool:
        return all(self.results)

    def __str__(self) -> str:
        return f"{self.valid_count}/{self.total} documents valid"


class BatchValidator:
    """Validate many documents (or many peers' documents) against one schema.

    ``backend`` selects the validation strategy (see
    :mod:`repro.engine.backends`); verdicts are identical across backends.
    """

    def __init__(self, schema, engine=None, backend=None) -> None:
        self.compiled = CompiledSchema(schema, engine, backend=backend)

    @property
    def schema(self):
        return self.compiled.schema

    @property
    def backend(self) -> str:
        return self.compiled.backend

    def validate(self, document: Tree) -> bool:
        """Membership of one document in the compiled schema's language."""
        return self.compiled.accepts(document)

    def validate_many(self, documents: Iterable[Tree]) -> list[bool]:
        """Validate a batch in one pass over the compiled automaton.

        The ``numpy`` backend steps the whole batch level-by-level through
        vectorized boolean tensors (many documents, one schema); the other
        backends validate per document.
        """
        if self.compiled.backend == "numpy":
            from repro.engine.backends import validate_many_vectorized

            return validate_many_vectorized(self.compiled, list(documents))
        return [self.compiled.accepts(document) for document in documents]

    def report(self, documents: Iterable[Tree]) -> BatchReport:
        return BatchReport(tuple(self.validate_many(documents)))

    def first_invalid(self, documents: Iterable[Tree]) -> Optional[Tree]:
        """The first document rejected by the schema, or ``None``."""
        for document in documents:
            if not self.compiled.accepts(document):
                return document
        return None
