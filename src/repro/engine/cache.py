"""A bounded LRU cache with hit / miss / eviction accounting.

The cache is deliberately simple: an :class:`collections.OrderedDict` keyed
by hashable tuples, move-to-end on access, popitem(last=False) on overflow.
Statistics are kept both globally and per *kind* (the first element of every
key the :class:`~repro.engine.compilation.CompilationEngine` uses), so the
``--stats`` report can show where the hits come from.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional


@dataclass
class CacheStats:
    """Counters of one cache (or one kind of entry within a cache)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    by_kind: dict[str, "CacheStats"] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def _kind(self, kind: str) -> "CacheStats":
        if kind not in self.by_kind:
            self.by_kind[kind] = CacheStats()
        return self.by_kind[kind]

    def kind_counters(self, kind: str) -> "CacheStats":
        """The per-kind counter leaf, for hot paths that bump counters inline.

        ``record_hit``/``record_miss`` cost a dict probe and two increments
        per call; kernel-step counters (the union-row cache, the codegen
        fold tables) instead hoist the leaf once and do plain int adds.
        Those counters appear in the per-kind breakdown of
        :meth:`snapshot`/:meth:`report` but are deliberately *not* folded
        into the global hit/miss totals, which keep describing the engine
        memo caches alone.
        """
        return self._kind(kind)

    def record_hit(self, kind: Optional[str] = None) -> None:
        self.hits += 1
        if kind is not None:
            self._kind(kind).hits += 1

    def record_miss(self, kind: Optional[str] = None) -> None:
        self.misses += 1
        if kind is not None:
            self._kind(kind).misses += 1

    def record_eviction(self, kind: Optional[str] = None) -> None:
        self.evictions += 1
        if kind is not None:
            self._kind(kind).evictions += 1

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view (what :class:`~repro.api.DesignReport` stores)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "by_kind": {
                kind: {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "hit_rate": stats.hit_rate,
                }
                for kind, stats in sorted(self.by_kind.items())
            },
        }

    def delta(self, before: dict[str, Any]) -> dict[str, Any]:
        """The counters accumulated since an earlier :meth:`snapshot`.

        Returns the same plain-dict shape as :meth:`snapshot` (without the
        per-kind breakdown), with the hit rate computed over the delta.
        """
        hits = self.hits - before["hits"]
        misses = self.misses - before["misses"]
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions - before["evictions"],
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self.by_kind.clear()

    def report(self, title: str = "engine cache") -> str:
        """A small human-readable table (what the CLI ``--stats`` flag prints)."""
        lines = [
            f"{title}: {self.hits} hits / {self.lookups} lookups "
            f"({100.0 * self.hit_rate:.1f}% hit rate), {self.evictions} evictions"
        ]
        for kind, stats in sorted(self.by_kind.items()):
            lines.append(
                f"  {kind:<18} hits={stats.hits:<6} misses={stats.misses:<6} "
                f"hit_rate={100.0 * stats.hit_rate:.1f}%"
            )
        return "\n".join(lines)


_MISSING = object()


class LRUCache:
    """A least-recently-used mapping with bounded capacity and statistics.

    The cache may be shared across the distributed runtime's pool workers,
    so it must tolerate concurrent use -- but it sits on every engine hot
    path, so it takes no lock.  Safety rests on the GIL: each individual
    ``OrderedDict`` operation used here (``get``, ``__setitem__``,
    ``move_to_end``, ``popitem``) is a C method that runs atomically for
    the hashable key types the engine uses (tuples of strings and ints --
    no Python-level ``__hash__``/``__eq__`` callbacks).  The benign races
    that remain are documented inline: a ``move_to_end`` may race an
    eviction (caught and ignored -- only recency is lost), two threads may
    compute the same missing value (the results are interchangeable by
    construction, either insert may win), and statistics counters may
    undercount under contention.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _touch(self, key: Hashable) -> None:
        try:
            self._entries.move_to_end(key)
        except KeyError:
            # The entry was evicted between lookup and touch (another
            # thread's insert overflowed the cache); recency is lost, the
            # value already read stays valid.
            pass

    def get(self, key: Hashable, kind: Optional[str] = None) -> Any:
        """Return the cached value or ``None``, recording a hit or a miss."""
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.stats.record_miss(kind)
            return None
        self._touch(key)
        self.stats.record_hit(kind)
        return entry[0]

    def put(self, key: Hashable, value: Any, kind: Optional[str] = None) -> Any:
        """Insert a value, evicting the least recently used entry on overflow.

        An eviction is attributed to the kind of the entry being *dropped*,
        not the one being inserted -- the per-kind report must show which
        pipeline stage is thrashing.
        """
        self._entries[key] = (value, kind)
        self._touch(key)
        if len(self._entries) > self.capacity:
            try:
                _evicted_key, (_evicted_value, evicted_kind) = self._entries.popitem(last=False)
            except KeyError:
                pass  # a concurrent eviction got there first
            else:
                self.stats.record_eviction(evicted_kind)
        return value

    def get_or_compute(self, key: Hashable, thunk: Callable[[], Any], kind: Optional[str] = None) -> Any:
        """The memoisation primitive: one lookup, one compute-and-store on miss.

        ``None`` is a legal cached value (inclusion counter-examples use it
        for "no counter-example"), which is why this does not layer on
        :meth:`get`.
        """
        entry = self._entries.get(key, _MISSING)
        if entry is not _MISSING:
            self._touch(key)
            self.stats.record_hit(kind)
            return entry[0]
        self.stats.record_miss(kind)
        return self.put(key, thunk(), kind)

    def clear(self) -> None:
        self._entries.clear()
