"""Per-schema code generation for the validation hot path.

The interpreted kernels (:meth:`CompiledSchema._possible_mask
<repro.engine.batch.CompiledSchema._possible_mask>` bottom-up, the
:class:`~repro.streaming.machine.StreamingRun` frame stepping) pay Python
interpreter overhead per node and per rule.  This module emits a dedicated
validator *function* per schema with ``compile()``/``exec``:

* the rule tables (per-label fold memos, leaf constants) are flattened
  into the generated function's **default arguments**, i.e. fast locals --
  no attribute or global lookups in the hot loop;
* the single-rule case (every DTD label) is **fully unrolled**: the
  generated fold core has no rule loop at all, one accept test per word;
* automata are stepped through precomputed dense ``symbol-mask ->
  successor-mask`` union rows (:attr:`CompactNFA.union_rows
  <repro.automata.kernel.compact.CompactNFA.union_rows>`) instead of the
  bit-scanning inner ``while`` loops, and every folded word is memoized
  per label, so a repeated sibling word costs one dict probe.

The whole-payload strategy: parse with a bare
:class:`xml.etree.ElementTree.XMLParser` (the C parser does all
structural work, no event-queue recording), then fold the element tree
bottom-up -- a node's possible-state mask is a memo probe keyed by its
children's masks, with the leaf case (a per-label constant) inlined into
the parent so most nodes never even recurse.  This trades the
interpreted streaming path's O(depth) memory bound for O(document) (the
element tree is materialized); the ``python`` backend remains the
bounded-memory path.

Verdicts are bit-identical to the interpreted oracle.  Malformed or
truncated input is detected by the parser (``feed``/``close`` raise for
every such payload); the caller then replays the buffered bytes through
the interpreted path so the typed :class:`~repro.errors.InvalidXMLError`
classification matches exactly.  Documents too deep for the recursive
fold (``RecursionError``) fall back the same way -- the interpreted
machine is iterative and handles any depth.

Generated validators are memoized by the schema's content fingerprint
(engine memo kind ``codegen-validator`` -- bounded and eviction-counted
in ``engine_stats`` like every engine memo); the per-label fold tables
are themselves bounded, with evictions counted under ``codegen-fold``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

__all__ = ["CodegenValidator", "codegen_validator_for"]

#: Bound on each per-label fold table (distinct children-mask words).
_TABLE_CAPACITY = 8192

#: The generated recursive fold over a parsed element tree.  All constant
#: tables are default arguments -- fast locals -- and only the cold fold
#: calls resolve through the generated module's namespace.  The one-child
#: case keys the per-label memo by the bare child mask (no key tuple);
#: leaf children are folded inline via the per-label constant table.
_MASK_SOURCE = """\
def _mask_of(e, _len=len, leaf_get=leaf_get, tables=tables, tables1=tables1):
    k = _len(e)
    if k == 0:
        return leaf_get(e.tag, 0)
    if k == 1:
        c = e[0]
        child = leaf_get(c.tag, 0) if not _len(c) else _mask_of(c)
        try:
            return tables1[e.tag][child]
        except KeyError:
            return fold1(e.tag, child)
    key = tuple([leaf_get(c.tag, 0) if not _len(c) else _mask_of(c) for c in e])
    try:
        return tables[e.tag][key]
    except KeyError:
        return fold(e.tag, key)
"""

#: Fold core for single-rule schemas (every DTD): no rule loop.  A zero
#: child mask means no state is assignable to that child, so no state is
#: assignable here either -- the horizontal automata must never step on
#: an empty symbol set (the interpreted ``_possible_mask`` early-returns
#: before reaching them).
_FOLD_SINGLE_SOURCE = """\
def _fold_core(label, masks):
    entry = rules.get(label)
    if entry is None or 0 in masks:
        return 0
    state_bit, nfa = entry
    if accepts(nfa, masks, union_stats):
        return state_bit
    return 0
"""

#: Fold core for schemas where some label has several rules (SDTD/EDTD).
_FOLD_MULTI_SOURCE = """\
def _fold_core(label, masks):
    entries = rules.get(label)
    if entries is None or 0 in masks:
        return 0
    mask = 0
    for state_bit, nfa in entries:
        if accepts(nfa, masks, union_stats):
            mask |= state_bit
    return mask
"""


def codegen_validator_for(compiled, engine=None) -> "CodegenValidator":
    """The memoized generated validator of a compiled schema.

    Keyed by the schema's UTA content fingerprint under the engine memo
    kind ``codegen-validator``: structurally identical schemas share one
    generated function and its warm fold tables, and the
    :class:`~repro.engine.cache.LRUCache` bounds and eviction-counts the
    memo like every other kind.
    """
    from repro.engine.compilation import CODEGEN_VALIDATOR_KIND, get_default_engine

    active = engine if engine is not None else getattr(compiled, "engine", None)
    if active is None:
        active = get_default_engine()
    fingerprint = active.fingerprint(compiled.uta)
    return active.memo(
        CODEGEN_VALIDATOR_KIND,
        (fingerprint,),
        lambda: CodegenValidator(compiled, active),
    )


class CodegenValidator:
    """One schema's generated validator functions plus their fold tables."""

    __slots__ = (
        "finals_mask",
        "tables",
        "tables1",
        "leaf",
        "single_rule",
        "source",
        "_fold_core",
        "_fold",
        "_fold1",
        "_mask_of",
        "_stats",
    )

    def __init__(self, compiled, engine=None) -> None:
        engine = engine if engine is not None else compiled.engine
        rules_by_label = compiled._rules_by_label
        self.finals_mask = compiled._finals_mask
        self.single_rule = all(len(rules) == 1 for rules in rules_by_label.values())
        #: label -> {children-mask word (tuple) -> folded mask}; ``tables1``
        #: is the one-child specialization keyed by the bare child mask, so
        #: the dominant unary case never allocates a key tuple.
        self.tables: dict = {label: {} for label in rules_by_label}
        self.tables1: dict = {label: {} for label in rules_by_label}
        self._stats = engine.stats.kind_counters("codegen-fold")

        if self.single_rule:
            rules = {label: rules[0] for label, rules in rules_by_label.items()}
            fold_source = _FOLD_SINGLE_SOURCE
        else:
            rules = {label: tuple(rules) for label, rules in rules_by_label.items()}
            fold_source = _FOLD_MULTI_SOURCE
        #: Leaf masks are per-label constants (the fold of the empty word);
        #: filled in place below so the generated defaults see the updates.
        self.leaf = {}
        namespace = {
            "rules": rules,
            "accepts": type(compiled)._horizontal_accepts,
            "union_stats": compiled._union_stats,
            "tables": self.tables,
            "tables1": self.tables1,
            "leaf_get": self.leaf.get,
        }
        self.source = fold_source + "\n" + _MASK_SOURCE
        filename = f"<repro-codegen:{engine.fingerprint(compiled.uta)[:12]}>"
        exec(compile(self.source, filename, "exec"), namespace)  # noqa: S102
        self._fold_core = namespace["_fold_core"]
        self.leaf.update(
            {label: self._fold_core(label, ()) for label in rules_by_label}
        )

        stats = self._stats
        tables, tables1 = self.tables, self.tables1
        fold_core = self._fold_core

        def fold(label, key):
            mask = fold_core(label, key)
            table = tables.get(label)
            if table is not None:
                if len(table) >= _TABLE_CAPACITY:
                    table.clear()
                    stats.evictions += 1
                table[key] = mask
                stats.misses += 1
            return mask

        def fold1(label, child):
            mask = fold_core(label, (child,))
            table = tables1.get(label)
            if table is not None:
                if len(table) >= _TABLE_CAPACITY:
                    table.clear()
                    stats.evictions += 1
                table[child] = mask
                stats.misses += 1
            return mask

        self._fold = fold
        self._fold1 = fold1
        # The generated fold resolves its cold-path names at call time
        # through the generated module's namespace: bind them now.
        namespace["fold"] = fold
        namespace["fold1"] = fold1
        self._mask_of = namespace["_mask_of"]

    # ------------------------------------------------------------------ #
    # tree (batch) path
    # ------------------------------------------------------------------ #

    def validate_tree(self, tree) -> bool:
        """BatchValidator-identical membership of one parsed document."""
        return bool(self._tree_mask(tree) & self.finals_mask)

    def _tree_mask(self, node) -> int:
        children = node.children
        label = node.label
        if not children:
            try:
                return self.leaf[label]
            except KeyError:
                return 0
        tree_mask = self._tree_mask
        if len(children) == 1:
            child = tree_mask(children[0])
            try:
                return self.tables1[label][child]
            except KeyError:
                return self._fold1(label, child)
        key = tuple([tree_mask(child) for child in children])
        try:
            return self.tables[label][key]
        except KeyError:
            return self._fold(label, key)

    # ------------------------------------------------------------------ #
    # whole-payload (streaming surface) path
    # ------------------------------------------------------------------ #

    def try_validate_payload(self, payload):
        """Verdict for one whole payload, or ``None`` on any parse anomaly.

        ``None`` means: replay through the interpreted path, either for
        the exact malformed/truncated classification or because the
        document is too deep for the recursive fold (the payload is
        untouched).
        """
        parser = ET.XMLParser()
        try:
            parser.feed(payload)
            root = parser.close()
        except ET.ParseError:
            return None
        return self._verdict_of(root)

    def try_validate_chunks(self, chunks, fed: list):
        """Verdict for chunked input, or ``None`` on any parse anomaly.

        Consumed chunks are appended to ``fed`` so the caller can replay
        ``fed`` (plus whatever is left of ``chunks``) through the
        interpreted path for classification parity.
        """
        parser = ET.XMLParser()
        try:
            for chunk in chunks:
                fed.append(chunk)
                parser.feed(chunk)
            root = parser.close()
        except ET.ParseError:
            return None
        return self._verdict_of(root)

    def _verdict_of(self, root):
        if root is None:  # pragma: no cover - close() raises instead
            return None
        try:
            mask = self._mask_of(root)
        except RecursionError:
            # Deeper than the interpreter's stack allows: the iterative
            # O(depth) interpreted machine handles it.
            return None
        return bool(mask & self.finals_mask)
