"""Closure constructions used by the bottom-up consistency problems.

``cons[SDTD]`` and ``cons[DTD]`` ask whether the regular tree language
``extT(τn)`` (given as the EDTD ``T(τn)``, Section 3.1) is definable by an
SDTD or a DTD.  The characterisations the paper relies on are

* **SDTD-definability** ⟺ closure under *ancestor-guarded subtree exchange*
  (Lemma 3.5), and
* **DTD-definability** ⟺ closure under *subtree substitution* (Lemma 3.12).

Both are decided here constructively: the :func:`single_type_closure`
(resp. :func:`dtd_closure`) of an EDTD is the smallest single-type (resp.
local) tree language containing it, obtained by merging specialisations
that share an ancestor context (resp. an element name).  The EDTD is
SDTD-/DTD-definable iff its closure defines the *same* language, in which
case the closure *is* the wanted type ``typeT(τn)``.  This is equivalent to
the bottom-up merging procedure in the proofs of Theorems 3.10 and 3.13.

Both closures are memoized through the process
:class:`~repro.engine.compilation.CompilationEngine` under a content
fingerprint of the input EDTD: rebuilding the same combined type ``T(τn)``
(the typical shape of the ``cons[S]`` benchmarks and of repeated design
analyses) returns the already-constructed closure object, whose own
tree-automaton conversion and fingerprint are in turn shared by the
comparison layer.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.automata import operations as ops
from repro.engine.compilation import get_default_engine
from repro.schemas.content_model import ContentModel
from repro.schemas.dtd import DTD
from repro.schemas.edtd import EDTD
from repro.schemas.sdtd import SDTD


def schema_content_fingerprint(edtd: EDTD) -> str:
    """A content fingerprint of an EDTD (start, μ, and content automata).

    Two EDTDs with equal fingerprints are structurally identical up to the
    canonical renaming inside the content-model fingerprints, so they have
    the same closures; this is what makes the fingerprint sound as a memo
    key for :func:`single_type_closure` / :func:`dtd_closure`.
    """
    engine = get_default_engine()
    hasher = hashlib.sha256()
    hasher.update(type(edtd).__name__.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(edtd.start.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(str(edtd.formalism).encode("utf-8"))
    hasher.update(b"\x00")
    for name in sorted(edtd.specialized_names):
        model = edtd.rules.get(name)
        digest = engine.fingerprint(model.nfa) if model is not None else "-"
        hasher.update(f"{name}>{edtd.mu[name]}>{digest}".encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()[:32]


def single_type_closure(edtd: EDTD) -> SDTD:
    """The smallest single-type tree language containing ``[edtd]``, as an SDTD.

    Specialised names of the closure are *groups* ``(element, M)`` where
    ``M`` is the set of original specialisations that can occur under one
    ancestor context; the content model of a group is the union of the
    members' content models with every child symbol coarsened to its own
    group.  ``[edtd] ⊆ [closure]`` always holds; equality holds iff
    ``[edtd]`` is closed under ancestor-guarded subtree exchange.

    Memoized by the content fingerprint of ``edtd`` (the closure of a
    structurally identical type is the same schema object).
    """
    return get_default_engine().memo(
        "single-type-closure",
        (schema_content_fingerprint(edtd),),
        lambda: single_type_closure_uncached(edtd),
    )


def single_type_closure_uncached(edtd: EDTD) -> SDTD:
    """The closure construction itself (the memoized path's oracle)."""
    source = edtd if edtd.is_reduced() else edtd.reduced()
    root_element = source.root_element
    root_group = (root_element, frozenset({source.start}))

    group_names: dict[tuple[str, frozenset[str]], str] = {}
    counters: dict[str, int] = {}

    def name_of(group: tuple[str, frozenset[str]]) -> str:
        if group not in group_names:
            element = group[0]
            counters[element] = counters.get(element, 0) + 1
            group_names[group] = f"{element}#{counters[element]}"
        return group_names[group]

    rules: dict[str, ContentModel] = {}
    mu: dict[str, str] = {}
    queue = deque([root_group])
    seen = {root_group}
    while queue:
        group = queue.popleft()
        element, members = group
        group_name = name_of(group)
        mu[group_name] = element
        union_nfa = ops.union_all(
            [source.content(member).nfa.with_alphabet(source.specialized_names) for member in sorted(members)]
        ).with_alphabet(source.specialized_names)
        used = union_nfa.used_symbols()
        # Group the child symbols by element name; each child element gets
        # exactly one group, which is what makes the closure single-type.
        child_groups: dict[str, tuple[str, frozenset[str]]] = {}
        for symbol in used:
            child_element = source.mu[symbol]
            current = child_groups.get(child_element, (child_element, frozenset()))
            child_groups[child_element] = (child_element, current[1] | {symbol})
        renaming = {}
        for child_element, child_group in child_groups.items():
            child_name = name_of(child_group)
            mu[child_name] = child_element
            for symbol in child_group[1]:
                renaming[symbol] = child_name
            if child_group not in seen:
                seen.add(child_group)
                queue.append(child_group)
        rules[group_name] = ContentModel(
            union_nfa.rename_symbols(renaming).trim(), source.formalism, check=False
        )
    return SDTD(name_of(root_group), rules, mu, source.formalism)


def dtd_closure(edtd: EDTD) -> DTD:
    """The smallest local (DTD-definable) tree language containing ``[edtd]``.

    The content model of element ``a`` is the union, over all *useful*
    specialisations of ``a``, of their content models projected to element
    names through ``mu``.  ``[edtd] ⊆ [closure]`` always holds; equality
    holds iff ``[edtd]`` is closed under subtree substitution.

    Memoized by the content fingerprint of ``edtd`` (see
    :func:`single_type_closure`).
    """
    return get_default_engine().memo(
        "dtd-closure",
        (schema_content_fingerprint(edtd),),
        lambda: dtd_closure_uncached(edtd),
    )


def dtd_closure_uncached(edtd: EDTD) -> DTD:
    """The closure construction itself (the memoized path's oracle)."""
    source = edtd if edtd.is_reduced() else edtd.reduced()
    rules: dict[str, ContentModel] = {}
    for element in sorted(source.alphabet):
        members = sorted(source.specializations(element))
        if not members:
            continue
        union_nfa = ops.union_all(
            [source.content(member).nfa.with_alphabet(source.specialized_names) for member in members]
        )
        projected = union_nfa.rename_symbols(dict(source.mu)).trim()
        rules[element] = ContentModel(projected, source.formalism, check=False)
    return DTD(source.root_element, rules, source.formalism, alphabet=source.alphabet)
