"""R-DTDs: the paper's abstraction of W3C DTDs (Definition 3).

An R-DTD is a triple ``<Sigma, pi, s>``: an alphabet of element names, a
mapping from element names to content models (R-types over ``Sigma``) and a
start symbol.  A tree is valid when its root is labelled ``s`` and the
children string of every node belongs to the content model of the node's
label.

The module also implements the *dual* automaton (Definition 4), the notion
of *reduced* DTD (Definition 5) with the reduction procedure sketched in the
paper, and DTD equivalence via Proposition 4.1.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterable, Optional

from repro.errors import SchemaError
from repro.automata import operations as ops
from repro.automata.dfa import DFA
from repro.automata.equivalence import equivalent as nfa_equivalent
from repro.automata.nfa import NFA
from repro.schemas.content_model import ContentModel, Formalism, LanguageLike, content_model
from repro.trees.automata import UnrankedTreeAutomaton
from repro.trees.document import Tree


class DTD:
    """An R-DTD ``<Sigma, pi, s>``.

    Parameters
    ----------
    start:
        The start symbol ``s``.
    rules:
        Mapping from element names to content models (anything accepted by
        :class:`~repro.schemas.content_model.ContentModel`).  Element names
        that occur in content models but have no rule are leaf-only, i.e.
        their content model is ``ε`` -- this is the convention the paper
        adopts ("if no rule is given for a label, nodes with this label are
        assumed to be (solely) leaves").
    formalism:
        The content-model formalism ``R``; it applies to every rule given as
        text or expression.
    alphabet:
        Optional extra element names to include in ``Sigma``.
    """

    schema_language = "DTD"

    def __init__(
        self,
        start: str,
        rules: Mapping[str, LanguageLike],
        formalism: Formalism | str = Formalism.NRE,
        alphabet: Iterable[str] = (),
    ) -> None:
        self.start = start
        self.formalism = Formalism(formalism)
        self.rules: dict[str, ContentModel] = {
            name: content_model(model, self.formalism) for name, model in rules.items()
        }
        names = set(alphabet) | {start} | set(self.rules)
        for model in self.rules.values():
            names |= set(model.nfa.alphabet)
        self.alphabet = frozenset(names)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    def content(self, name: str) -> ContentModel:
        """``pi(name)``; element names without a rule are leaf-only (``ε``)."""
        if name not in self.alphabet:
            raise SchemaError(f"{name!r} is not an element name of this DTD")
        model = self.rules.get(name)
        if model is None:
            return ContentModel(NFA.epsilon_language(), self.formalism, check=False)
        return model

    @property
    def size(self) -> int:
        """Size measure: element names plus the sizes of all content models."""
        return len(self.alphabet) + sum(model.size for model in self.rules.values())

    def describe(self) -> str:
        """A textual rendering in the paper's arrow notation (Figure 4 style)."""
        lines = []
        for name in sorted(self.rules):
            lines.append(f"{name} -> {self.rules[name]}")
        return "\n".join(lines) if lines else f"{self.start} (all elements are leaves)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DTD(start={self.start!r}, elements={len(self.alphabet)})"

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def validate(self, tree: Tree) -> bool:
        """Is ``tree`` in ``[tau]``?"""
        return self.validation_error(tree) is None

    def validation_error(self, tree: Tree) -> Optional[str]:
        """``None`` when valid, otherwise a human-readable reason."""
        if tree.label != self.start:
            return f"root is {tree.label!r} but the DTD requires {self.start!r}"
        for path, node in tree.nodes():
            if node.label not in self.alphabet:
                return f"unknown element {node.label!r} at {path!r}"
            model = self.content(node.label)
            child_string = tuple(child.label for child in node.children)
            if not model.accepts(child_string):
                return (
                    f"children {' '.join(child_string) or 'ε'} of {node.label!r} at {path!r} "
                    f"do not match its content model {model}"
                )
        return None

    # ------------------------------------------------------------------ #
    # automata views
    # ------------------------------------------------------------------ #

    def to_uta(self) -> UnrankedTreeAutomaton:
        """The unranked tree automaton with one state per element name."""
        horizontal = {}
        for name in self.alphabet:
            model = self.content(name)
            horizontal[(name, name)] = model.nfa.with_alphabet(self.alphabet)
        return UnrankedTreeAutomaton(self.alphabet, self.alphabet, horizontal, {self.start})

    def dual(self) -> DFA:
        """The dual dFA of Definition 4 (the *vertical* language of the DTD)."""
        initial = "__q0__"
        states = {initial} | {f"q_{name}" for name in self.alphabet}
        transitions: dict[tuple[str, str], str] = {(initial, self.start): f"q_{self.start}"}
        finals = set()
        for name in self.alphabet:
            model = self.content(name)
            for child in model.used_symbols():
                transitions[(f"q_{name}", child)] = f"q_{child}"
            if model.accepts_epsilon():
                finals.add(f"q_{name}")
        return DFA(states, self.alphabet, transitions, initial, finals)

    # ------------------------------------------------------------------ #
    # reduction (Definition 5)
    # ------------------------------------------------------------------ #

    def bound_names(self) -> frozenset[str]:
        """Element names that can derive a finite tree (the *bound* states of Definition 5)."""
        bound: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in self.alphabet:
                if name in bound:
                    continue
                model = self.content(name)
                allowed = ops.sigma_star(bound) if bound else NFA.epsilon_language()
                if not ops.intersection(model.nfa.with_alphabet(self.alphabet), allowed.with_alphabet(self.alphabet)).is_empty_language():
                    bound.add(name)
                    changed = True
        return frozenset(bound)

    def useful_names(self) -> frozenset[str]:
        """Element names that occur in at least one valid tree."""
        bound = self.bound_names()
        if self.start not in bound:
            return frozenset()
        useful = {self.start}
        queue = [self.start]
        while queue:
            name = queue.pop()
            model = self.content(name)
            realizable = ops.intersection(
                model.nfa.with_alphabet(self.alphabet), ops.sigma_star(bound).with_alphabet(self.alphabet)
            )
            for child in realizable.used_symbols():
                if child not in useful:
                    useful.add(child)
                    queue.append(child)
        return frozenset(useful)

    def is_empty(self) -> bool:
        """Does the DTD define the empty tree language?"""
        return self.start not in self.bound_names()

    def is_reduced(self) -> bool:
        """Is the DTD reduced in the sense of Definition 5?"""
        useful = self.useful_names()
        if not useful:
            return False
        if useful != self.alphabet:
            return False
        for name in self.alphabet:
            if not self.content(name).used_symbols() <= useful:
                return False
        return True

    def reduced(self) -> "DTD":
        """The reduced DTD describing the same language (Definition 5).

        Raises :class:`SchemaError` when the language is empty, because an
        empty language has no reduced DTD (the paper restricts attention to
        reduced types, for which ``[tau] != ∅``).
        """
        useful = self.useful_names()
        if not useful:
            raise SchemaError("the DTD defines the empty language and cannot be reduced")
        rules = {}
        for name in useful:
            if name not in self.rules:
                continue
            restricted = self.rules[name].nfa.restrict_alphabet(useful).trim()
            rules[name] = ContentModel(restricted, self.formalism, check=False)
        return DTD(self.start, rules, self.formalism, alphabet=useful)

    # ------------------------------------------------------------------ #
    # equivalence (Proposition 4.1)
    # ------------------------------------------------------------------ #

    def equivalent_to(self, other: "DTD") -> bool:
        """Language equivalence of two DTDs via Proposition 4.1.

        Both DTDs are reduced first; per the proposition, two reduced DTDs
        are equivalent iff they have the same root, the same element names
        and element-wise equivalent content models.
        """
        self_empty = self.is_empty()
        other_empty = other.is_empty()
        if self_empty or other_empty:
            return self_empty == other_empty
        left = self.reduced()
        right = other.reduced()
        if left.start != right.start:
            return False
        if left.alphabet != right.alphabet:
            return False
        for name in left.alphabet:
            if not nfa_equivalent(left.content(name).nfa, right.content(name).nfa, left.alphabet):
                return False
        return True
