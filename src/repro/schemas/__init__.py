"""Abstractions of XML schema languages (Section 2.2).

The paper compares three schema languages, parameterised by the formalism
``R`` used for content models (``nFA``, ``dFA``, ``nRE`` or ``dRE``):

========================  =============================  =======================
Schema language           W3C / practical counterpart     Class in this package
========================  =============================  =======================
``R-DTD``                 W3C DTDs (local tree grammars)  :class:`repro.schemas.DTD`
``R-SDTD``                W3C XML Schema (single-type)    :class:`repro.schemas.SDTD`
``R-EDTD``                Relax NG (regular tree langs.)  :class:`repro.schemas.EDTD`
========================  =============================  =======================

Every schema knows how to validate a tree, convert itself to an unranked
tree automaton, reduce itself (Definition 5) and report its size; the
closure constructions used by the bottom-up consistency problems live in
:mod:`repro.schemas.closures`, and :mod:`repro.schemas.dtd_text` parses both
W3C ``<!ELEMENT ...>`` syntax and the compact arrow notation the paper uses
in Figures 3-6.
"""

from repro.schemas.content_model import ContentModel, Formalism
from repro.schemas.dtd import DTD
from repro.schemas.sdtd import SDTD
from repro.schemas.edtd import EDTD, NormalizedEDTD, is_normalized, normalize
from repro.schemas.closures import dtd_closure, single_type_closure
from repro.schemas.dtd_text import parse_dtd_text, parse_rules

__all__ = [
    "ContentModel",
    "Formalism",
    "DTD",
    "SDTD",
    "EDTD",
    "NormalizedEDTD",
    "is_normalized",
    "normalize",
    "dtd_closure",
    "single_type_closure",
    "parse_dtd_text",
    "parse_rules",
]
