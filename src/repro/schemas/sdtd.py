"""R-SDTDs: single-type extended DTDs, the abstraction of W3C XSD (Definition 6).

An SDTD is an EDTD whose *dual* automaton is deterministic: within one
content model, at most one specialisation of each element name may occur.
Consequently the witness of every node of a valid tree is determined by the
node's ancestor string (Remark 3), which gives a simple linear-time
validation algorithm implemented here (no tree-automaton run needed).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NotSingleTypeError
from repro.automata.dfa import DFA
from repro.schemas.edtd import EDTD
from repro.trees.document import Tree


class SDTD(EDTD):
    """An R-SDTD; construction fails when the single-type requirement is violated."""

    schema_language = "SDTD"

    def _post_init_check(self) -> None:
        for name in self.specialized_names:
            used = self.content(name).used_symbols()
            seen: dict[str, str] = {}
            for child in used:
                element = self.mu[child]
                if element in seen and seen[element] != child:
                    raise NotSingleTypeError(
                        f"content model of {name!r} uses two specialisations "
                        f"({seen[element]!r} and {child!r}) of element {element!r}"
                    )
                seen[element] = child

    # ------------------------------------------------------------------ #
    # deterministic (top-down) validation
    # ------------------------------------------------------------------ #

    def witness(self, tree: Tree) -> Optional[Tree]:
        """The unique witness tree over ``Sigma~`` of a valid tree, else ``None``.

        The witness of a node depends only on its ancestor string
        (Remark 3): the root's witness is ``s~`` and the witness of a child
        labelled ``b`` under a node with witness ``a~`` is the unique
        specialisation of ``b`` occurring in ``pi(a~)``.
        """
        if tree.label != self.root_element:
            return None
        return self._witness(tree, self.start)

    def _witness(self, node: Tree, name: str) -> Optional[Tree]:
        model = self.content(name)
        used = model.used_symbols()
        child_names = []
        for child in node.children:
            candidates = [cand for cand in used if self.mu[cand] == child.label]
            if not candidates:
                return None
            child_names.append(candidates[0])  # unique by the single-type property
        if not model.accepts(tuple(child_names)):
            return None
        witness_children = []
        for child, child_name in zip(node.children, child_names):
            child_witness = self._witness(child, child_name)
            if child_witness is None:
                return None
            witness_children.append(child_witness)
        return Tree(name, tuple(witness_children))

    def validate(self, tree: Tree) -> bool:
        """Deterministic validation (equivalent to, but cheaper than, the EDTD run)."""
        return self.witness(tree) is not None

    def witness_name_at(self, tree: Tree, path: tuple[int, ...]) -> Optional[str]:
        """The specialised name the (unique) witness assigns to the node at ``path``."""
        witness = self.witness(tree)
        if witness is None:
            return None
        return witness.subtree(path).label

    # ------------------------------------------------------------------ #
    # the dual automaton over element names
    # ------------------------------------------------------------------ #

    def dual(self) -> DFA:
        """The dual dFA over ``Sigma`` of Definition 6 (the vertical language)."""
        initial = "__q0__"
        states = {initial} | {f"q_{name}" for name in self.specialized_names}
        transitions: dict[tuple[str, str], str] = {
            (initial, self.root_element): f"q_{self.start}"
        }
        finals = set()
        for name in self.specialized_names:
            model = self.content(name)
            for child in model.used_symbols():
                transitions[(f"q_{name}", self.mu[child])] = f"q_{child}"
            if model.accepts_epsilon():
                finals.add(f"q_{name}")
        return DFA(states, self.alphabet, transitions, initial, finals)
