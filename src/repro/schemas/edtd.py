"""R-EDTDs: extended DTDs / regular tree grammars (Definition 7).

An R-EDTD is a quintuple ``<Sigma, Sigma~, pi, s~, mu>``: a set of
*specialised* element names ``Sigma~``, an R-DTD over them, and a mapping
``mu`` onto the plain element names.  A tree over ``Sigma`` is valid when
some *witness* tree over ``Sigma~`` is valid for the underlying DTD and maps
to it under ``mu``.  EDTDs capture exactly the unranked regular tree
languages (Relax NG); SDTDs (W3C XSD) are the single-type restriction and
are implemented as a subclass in :mod:`repro.schemas.sdtd`.

The module also provides the *normalisation* of Section 4.3: every EDTD is
converted, through tree-automaton determinisation, into an equivalent
:class:`NormalizedEDTD` in which two distinct specialisations of the same
element name always denote disjoint tree languages (Lemma 4.10).  The
normalised form is what the top-down EDTD typing algorithms work on.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from typing import Iterable

from repro.errors import SchemaError
from repro.automata import operations as ops
from repro.automata.nfa import NFA
from repro.schemas.content_model import ContentModel, Formalism, LanguageLike, content_model
from repro.trees.automata import UnrankedTreeAutomaton, joint_reachable_profiles
from repro.trees.document import Tree


class EDTD:
    """An R-EDTD ``<Sigma, Sigma~, pi, s~, mu>``.

    Parameters
    ----------
    start:
        The start specialised name ``s~``.
    rules:
        Mapping from specialised names to content models *over specialised
        names*.  Specialised names that occur only inside content models are
        leaf-only.
    mu:
        Mapping from specialised names to element names.  Names missing from
        the mapping map to themselves (i.e. they are not really specialised),
        which keeps simple examples concise.
    formalism:
        The content-model formalism ``R``.
    """

    schema_language = "EDTD"

    def __init__(
        self,
        start: str,
        rules: Mapping[str, LanguageLike],
        mu: Mapping[str, str] | None = None,
        formalism: Formalism | str = Formalism.NRE,
        alphabet: Iterable[str] = (),
    ) -> None:
        self.start = start
        self.formalism = Formalism(formalism)
        self.rules: dict[str, ContentModel] = {
            name: content_model(model, self.formalism) for name, model in rules.items()
        }
        names = set(alphabet) | {start} | set(self.rules)
        for model in self.rules.values():
            names |= set(model.nfa.alphabet)
        self.specialized_names = frozenset(names)
        mapping = dict(mu or {})
        for name in self.specialized_names:
            mapping.setdefault(name, name)
        unknown = set(mapping) - set(self.specialized_names)
        if unknown:
            raise SchemaError(f"mu maps unknown specialised names {sorted(unknown)!r}")
        self.mu = mapping
        self.alphabet = frozenset(self.mu[name] for name in self.specialized_names)
        self._post_init_check()

    def _post_init_check(self) -> None:
        """Hook for subclasses (the single-type requirement of SDTDs)."""

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    def content(self, name: str) -> ContentModel:
        """``pi(name)`` over specialised names; missing rules mean leaf-only."""
        if name not in self.specialized_names:
            raise SchemaError(f"{name!r} is not a specialised name of this type")
        model = self.rules.get(name)
        if model is None:
            return ContentModel(NFA.epsilon_language(), self.formalism, check=False)
        return model

    def specializations(self, element: str) -> frozenset[str]:
        """``Sigma~(a)``: the specialised names mapping to ``element``."""
        return frozenset(name for name in self.specialized_names if self.mu[name] == element)

    def element_of(self, name: str) -> str:
        """``mu(name)``."""
        return self.mu[name]

    @property
    def root_element(self) -> str:
        """The element name of the root (``mu(s~)``)."""
        return self.mu[self.start]

    @property
    def size(self) -> int:
        """Size measure: specialised names plus the sizes of all content models."""
        return len(self.specialized_names) + sum(model.size for model in self.rules.values())

    def describe(self) -> str:
        """A textual rendering in the paper's arrow notation (Figure 6 style)."""
        lines = []
        for name in sorted(self.rules):
            element = self.mu[name]
            shown = name if element == name else f"{name}[{element}]"
            lines.append(f"{shown} -> {self.rules[name]}")
        return "\n".join(lines) if lines else f"{self.start} (all elements are leaves)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(start={self.start!r}, "
            f"specialized={len(self.specialized_names)}, elements={len(self.alphabet)})"
        )

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def to_uta(self) -> UnrankedTreeAutomaton:
        """The nUTA whose states are the specialised names."""
        horizontal = {}
        for name in self.specialized_names:
            model = self.content(name)
            horizontal[(name, self.mu[name])] = model.nfa.with_alphabet(self.specialized_names)
        return UnrankedTreeAutomaton(
            self.specialized_names, self.alphabet, horizontal, {self.start}
        )

    def validate(self, tree: Tree) -> bool:
        """Is ``tree`` in ``[tau]``?  (Some witness over ``Sigma~`` exists.)"""
        return self.to_uta().accepts(tree)

    def possible_witness_names(self, tree: Tree) -> frozenset[str]:
        """The specialised names assignable to the root of ``tree``."""
        return self.to_uta().possible_states(tree)

    def with_start(self, start: str) -> "EDTD":
        """The type ``tau(a~)`` of Lemma 3.4: same rules, different start."""
        return EDTD(start, self.rules, self.mu, self.formalism, alphabet=self.specialized_names)

    # ------------------------------------------------------------------ #
    # reduction
    # ------------------------------------------------------------------ #

    def bound_names(self) -> frozenset[str]:
        """Specialised names that can derive a finite tree."""
        bound: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in self.specialized_names:
                if name in bound:
                    continue
                model = self.content(name)
                allowed = ops.sigma_star(bound)
                # The fixpoint only needs non-emptiness of the product with
                # ``bound*``; the kernel decides that on the fly without
                # materialising the product automaton.
                if ops.intersects(
                    model.nfa.with_alphabet(self.specialized_names),
                    allowed.with_alphabet(self.specialized_names),
                ):
                    bound.add(name)
                    changed = True
        return frozenset(bound)

    def useful_names(self) -> frozenset[str]:
        """Specialised names occurring in at least one witness of a valid tree."""
        bound = self.bound_names()
        if self.start not in bound:
            return frozenset()
        useful = {self.start}
        queue = [self.start]
        while queue:
            name = queue.pop()
            realizable = ops.intersection(
                self.content(name).nfa.with_alphabet(self.specialized_names),
                ops.sigma_star(bound).with_alphabet(self.specialized_names),
            )
            for child in realizable.used_symbols():
                if child not in useful:
                    useful.add(child)
                    queue.append(child)
        return frozenset(useful)

    def is_empty(self) -> bool:
        return self.start not in self.bound_names()

    def is_reduced(self) -> bool:
        useful = self.useful_names()
        if not useful or useful != self.specialized_names:
            return False
        return all(self.content(name).used_symbols() <= useful for name in self.specialized_names)

    def reduced(self) -> "EDTD":
        """An equivalent reduced type (only useful specialised names remain)."""
        useful = self.useful_names()
        if not useful:
            raise SchemaError("the type defines the empty language and cannot be reduced")
        rules = {}
        for name in useful:
            if name not in self.rules:
                continue
            restricted = self.rules[name].nfa.restrict_alphabet(useful).trim()
            rules[name] = ContentModel(restricted, self.formalism, check=False)
        mu = {name: self.mu[name] for name in useful}
        return type(self)(self.start, rules, mu, self.formalism, alphabet=useful)


# --------------------------------------------------------------------------- #
# normalisation (Section 4.3)
# --------------------------------------------------------------------------- #


class NormalizedEDTD:
    """The normalised form of an EDTD used by the top-down EDTD algorithms.

    Its "states" are specialised names with the property of Lemma 4.10: two
    distinct specialisations of the same element name denote disjoint tree
    languages.  Because the normalised automaton is obtained by
    determinisation it may need *several* admissible root names (all the
    subset-states containing the original start), which is why this is a
    separate class rather than an :class:`EDTD`.
    """

    def __init__(
        self,
        element_of: Mapping[str, str],
        content: Mapping[str, NFA],
        roots: Iterable[str],
        subset_of: Mapping[str, frozenset[str]] | None = None,
    ) -> None:
        self.element_of = dict(element_of)
        self.content = dict(content)
        self.roots = frozenset(roots)
        self.names = frozenset(self.element_of)
        self.subset_of = dict(subset_of or {name: frozenset({name}) for name in self.names})
        if not self.roots <= self.names:
            raise SchemaError("roots of a normalised EDTD must be among its names")

    @classmethod
    def from_disjoint_edtd(cls, edtd: EDTD) -> "NormalizedEDTD":
        """View an already-normalised EDTD (pairwise disjoint specialisations) directly."""
        content = {
            name: edtd.content(name).nfa.with_alphabet(edtd.specialized_names)
            for name in edtd.specialized_names
        }
        return cls(dict(edtd.mu), content, {edtd.start})

    def specializations(self, element: str) -> frozenset[str]:
        """The normalised names of a given element name."""
        return frozenset(name for name in self.names if self.element_of[name] == element)

    @property
    def alphabet(self) -> frozenset[str]:
        return frozenset(self.element_of.values())

    def content_union(self, names: Iterable[str]) -> NFA:
        """``pi(kappa(x))``: the union of the content models of a set of names."""
        selected = [self.content[name] for name in names]
        if not selected:
            return NFA.empty_language(self.names)
        return ops.union_all(selected).with_alphabet(self.names)

    def to_uta(self) -> UnrankedTreeAutomaton:
        horizontal = {
            (name, self.element_of[name]): self.content[name].with_alphabet(self.names)
            for name in self.names
        }
        return UnrankedTreeAutomaton(self.names, self.alphabet, horizontal, self.roots)

    def validate(self, tree: Tree) -> bool:
        return self.to_uta().accepts(tree)

    @property
    def size(self) -> int:
        return len(self.names) + sum(nfa.size for nfa in self.content.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NormalizedEDTD(names={len(self.names)}, roots={len(self.roots)})"


def is_normalized(edtd: EDTD) -> bool:
    """Does the EDTD satisfy Lemma 4.10 (disjoint specialisation languages)?

    Decided with a single reachable-subset construction: two specialisations
    of the same element name overlap iff some tree can be assigned both.
    """
    uta = edtd.to_uta()
    profiles = joint_reachable_profiles([uta])
    for (states,) in profiles:
        by_element: dict[str, int] = {}
        for name in states:
            element = edtd.mu[name]
            by_element[element] = by_element.get(element, 0) + 1
            if by_element[element] > 1:
                return False
    return True


def normalize(edtd: EDTD, max_subsets: int = 4096) -> NormalizedEDTD:
    """Normalise an EDTD via bottom-up determinisation (Section 4.3).

    The result is language-equivalent and satisfies Lemma 4.10.  When the
    EDTD is already normalised it is returned as a direct view so that the
    original specialised names (and hence the typings reported to the user)
    stay readable.
    """
    reduced = edtd if edtd.is_reduced() else edtd.reduced()
    if is_normalized(reduced):
        return NormalizedEDTD.from_disjoint_edtd(reduced)

    uta = reduced.to_uta()
    profiles = joint_reachable_profiles([uta])
    subsets = sorted({states for (states,) in profiles if states}, key=sorted)
    if len(subsets) > max_subsets:
        raise MemoryError("EDTD normalisation exceeded the subset budget")

    def element_of_subset(subset: frozenset[str]) -> str:
        elements = {reduced.mu[name] for name in subset}
        if len(elements) != 1:
            raise SchemaError("internal error: mixed-element subset during normalisation")
        return next(iter(elements))

    names: dict[frozenset[str], str] = {}
    counters: dict[str, int] = {}
    for subset in subsets:
        element = element_of_subset(subset)
        counters[element] = counters.get(element, 0) + 1
        names[subset] = f"{element}#{counters[element]}"

    element_of = {names[subset]: element_of_subset(subset) for subset in subsets}
    subset_of = {names[subset]: subset for subset in subsets}
    content: dict[str, NFA] = {}
    for subset in subsets:
        element = element_of_subset(subset)
        content[names[subset]] = _normalized_content(reduced, element, subset, subsets, names)
    roots = {names[subset] for subset in subsets if reduced.start in subset}
    return NormalizedEDTD(element_of, content, roots, subset_of)


def _normalized_content(
    edtd: EDTD,
    element: str,
    target: frozenset[str],
    subsets: list[frozenset[str]],
    names: Mapping[frozenset[str], str],
) -> NFA:
    """Horizontal DFA (as an NFA) of the normalised name ``(element, target)``.

    It reads strings of normalised names ``N1 ... Nk`` and accepts exactly
    those for which the set of original specialisations of ``element``
    compatible with the children is ``target``.
    """
    original_names = sorted(edtd.specializations(element))
    horizontals = {
        name: edtd.content(name).nfa.remove_epsilon().with_alphabet(edtd.specialized_names)
        for name in original_names
    }

    def initial_state() -> tuple:
        return tuple(
            frozenset(horizontals[name].epsilon_closure({horizontals[name].initial}))
            for name in original_names
        )

    def advance(state: tuple, child_subset: frozenset[str]) -> tuple:
        new_components = []
        for index, name in enumerate(original_names):
            nfa = horizontals[name]
            moved: set = set()
            for symbol in child_subset:
                moved |= nfa.step(state[index], symbol)
            new_components.append(frozenset(moved))
        return tuple(new_components)

    def assigned(state: tuple) -> frozenset[str]:
        result = set()
        for index, name in enumerate(original_names):
            if state[index] & horizontals[name].finals:
                result.add(name)
        return frozenset(result)

    start = initial_state()
    dfa_states = {start}
    transitions: dict[object, dict[str, set]] = {}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for child_subset in subsets:
            nxt = advance(current, child_subset)
            transitions.setdefault(current, {}).setdefault(names[child_subset], set()).add(nxt)
            if nxt not in dfa_states:
                dfa_states.add(nxt)
                queue.append(nxt)
    finals = {state for state in dfa_states if assigned(state) == target}
    alphabet = set(names.values())
    return NFA(dfa_states, alphabet, transitions, start, finals).relabel(f"{names[target]}_h").trim()
