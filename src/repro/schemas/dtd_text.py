"""Text front ends for schema documents.

Two concrete notations are accepted:

* the W3C DTD element-declaration syntax used in Figure 3::

      <!ELEMENT eurostat (averages, nationalIndex*)>
      <!ELEMENT country (#PCDATA)>

* the compact arrow notation the paper uses everywhere else (Figures 4-6)::

      rooti -> nationalIndex*
      nationalIndex -> country, Good, (index | value, year)

Both produce a plain mapping from element names to content-model text; the
caller decides which schema class (DTD, SDTD, EDTD) to build from it, which
keeps specialisation mappings explicit where they are needed (Figure 6).
"""

from __future__ import annotations

import re

from repro.errors import SchemaError
from repro.schemas.content_model import Formalism
from repro.schemas.dtd import DTD

_ELEMENT_DECL = re.compile(r"<!ELEMENT\s+([A-Za-z_][\w\-]*)\s+(.*?)>", re.DOTALL)
_ARROW_RULE = re.compile(r"^\s*([A-Za-z_][\w\-]*)\s*(?:->|→)\s*(.*?)\s*$")


def parse_rules(text: str) -> dict[str, str]:
    """Parse schema rules in either supported notation into ``{name: model-text}``.

    Lines that are blank or start with ``#`` are ignored in the arrow
    notation; ``#PCDATA``-only content models become leaf-only elements.
    """
    rules: dict[str, str] = {}
    if "<!ELEMENT" in text:
        for name, model in _ELEMENT_DECL.findall(text):
            rules[name] = _clean_model(model)
        if not rules:
            raise SchemaError("no <!ELEMENT ...> declarations found")
        return rules
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _ARROW_RULE.match(stripped)
        if not match:
            raise SchemaError(f"cannot parse schema rule {line!r}")
        name, model = match.groups()
        rules[name] = _clean_model(model)
    if not rules:
        raise SchemaError("the schema text contains no rules")
    return rules


def _clean_model(model: str) -> str:
    cleaned = model.strip()
    if cleaned in ("(#PCDATA)", "#PCDATA", "EMPTY"):
        return "ε"
    return cleaned


def parse_dtd_text(
    text: str, start: str | None = None, formalism: Formalism | str = Formalism.NRE
) -> DTD:
    """Parse a schema document into a :class:`~repro.schemas.dtd.DTD`.

    The start symbol defaults to the first declared element, which matches
    how the paper reads Figure 3 (the ``eurostat`` element).
    """
    rules = parse_rules(text)
    root = start if start is not None else next(iter(rules))
    return DTD(root, rules, formalism)
