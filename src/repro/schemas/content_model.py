"""Content models and the content-model formalisms ``R`` of the paper.

A *content model* constrains the children string of an element.  The paper
varies the formalism ``R`` used to write content models over four classes:

* ``nFA`` -- arbitrary nondeterministic finite automata,
* ``dFA`` -- deterministic finite automata,
* ``nRE`` -- arbitrary regular expressions,
* ``dRE`` -- deterministic (one-unambiguous) regular expressions, which is
  what the W3C standards actually require.

:class:`ContentModel` wraps a regular language together with the formalism
it is written in, checks that the language really is expressible in that
formalism (e.g. a ``dRE`` content model must be a deterministic expression)
and exposes the size measures used by Table 2.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.errors import UnsupportedFormalismError
from repro.automata.dfa import DFA
from repro.automata.determinism import is_one_unambiguous
from repro.automata.nfa import NFA
from repro.automata.regex import Regex, ensure_nfa, is_deterministic_regex, parse_regex


class Formalism(str, enum.Enum):
    """The content-model formalism ``R`` (Section 2.2)."""

    NFA = "nFA"
    DFA = "dFA"
    NRE = "nRE"
    DRE = "dRE"

    @property
    def is_deterministic(self) -> bool:
        """``dFA`` and ``dRE`` are the deterministic formalisms."""
        return self in (Formalism.DFA, Formalism.DRE)

    @property
    def is_expression(self) -> bool:
        return self in (Formalism.NRE, Formalism.DRE)


LanguageLike = Union[str, Regex, NFA, DFA, "ContentModel"]


class ContentModel:
    """A regular language over element names, tagged with its formalism.

    Parameters
    ----------
    language:
        The language, given as regular-expression text (paper notation), a
        parsed :class:`~repro.automata.regex.Regex`, an NFA or a DFA.
    formalism:
        The formalism ``R`` the content model is claimed to be written in.
    names:
        Whether regular-expression text uses multi-character element names
        (default ``True``, which is what schema documents need).
    check:
        When true (the default) the constructor verifies the formalism claim
        and raises :class:`UnsupportedFormalismError` otherwise.
    """

    __slots__ = ("nfa", "formalism", "source", "_regex")

    def __init__(
        self,
        language: LanguageLike,
        formalism: Formalism | str = Formalism.NRE,
        names: bool = True,
        check: bool = True,
    ) -> None:
        self.formalism = Formalism(formalism)
        self._regex: Optional[Regex] = None
        self.source: Optional[str] = None
        if isinstance(language, ContentModel):
            self.nfa = language.nfa
            self.source = language.source
            self._regex = language._regex
        elif isinstance(language, str):
            self.source = language
            self._regex = parse_regex(language, names=names)
            self.nfa = self._regex.to_nfa()
        elif isinstance(language, Regex):
            self._regex = language
            self.source = str(language)
            self.nfa = language.to_nfa()
        else:
            self.nfa = ensure_nfa(language)
        if check:
            self._check_formalism()

    # ------------------------------------------------------------------ #
    # formalism verification
    # ------------------------------------------------------------------ #

    def _check_formalism(self) -> None:
        if self.formalism == Formalism.DRE:
            if self._regex is not None:
                if not is_deterministic_regex(self._regex):
                    raise UnsupportedFormalismError(
                        f"content model {self.source!r} is not a deterministic regular expression"
                    )
            elif not is_one_unambiguous(self.nfa):
                raise UnsupportedFormalismError(
                    "the content model language is not one-unambiguous, so it has no dRE"
                )
        elif self.formalism == Formalism.DFA:
            # Every regular language has a DFA; nothing to verify beyond
            # well-formedness, but we normalise the representation so that
            # the size measure reflects the deterministic automaton.
            pass

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def regex(self) -> Optional[Regex]:
        """The expression form, when the content model was given as one."""
        return self._regex

    def to_dfa(self) -> DFA:
        """The minimal DFA of the content-model language.

        Compilation is delegated to the process
        :class:`~repro.engine.compilation.CompilationEngine`, so repeated
        calls (size accounting, validation, inclusion checks) reuse one
        memoized subset construction per distinct language representation.
        """
        from repro.engine.compilation import get_default_engine

        return get_default_engine().minimal_dfa(self.nfa)

    @property
    def size(self) -> int:
        """Size of the representation, respecting the formalism.

        For the deterministic-automaton formalism the relevant measure is
        the DFA size (this is where Table 2's exponential rows come from);
        for the others it is the size of the given NFA / expression.
        """
        if self.formalism == Formalism.DFA:
            return self.to_dfa().size
        return self.nfa.size

    def used_symbols(self) -> frozenset[str]:
        """Element names that actually occur in some accepted word."""
        return self.nfa.used_symbols()

    def accepts(self, word) -> bool:
        """Membership of a children string in the content model."""
        return self.nfa.accepts(word)

    def accepts_epsilon(self) -> bool:
        return self.nfa.accepts_epsilon()

    def renamed(self, mapping: dict[str, str]) -> "ContentModel":
        """Apply a symbol renaming (e.g. the specialisation mapping ``mu``)."""
        return ContentModel(self.nfa.rename_symbols(mapping), self.formalism, check=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = self.source if self.source is not None else repr(self.nfa)
        return f"ContentModel({shown!r}, {self.formalism.value})"

    def __str__(self) -> str:
        if self.source is not None:
            return self.source
        from repro.automata.to_regex import nfa_to_regex_text

        rendered = nfa_to_regex_text(self.nfa, max_size=400)
        if rendered is not None:
            return rendered
        word_sample = self.nfa.shortest_word()
        example = " ".join(word_sample) if word_sample else "ε"
        return f"<automaton content model, e.g. {example}>" if word_sample is not None else "∅"


def content_model(
    language: LanguageLike, formalism: Formalism | str = Formalism.NRE, names: bool = True
) -> ContentModel:
    """Convenience coercion used by the schema constructors."""
    if isinstance(language, ContentModel):
        return language
    return ContentModel(language, formalism, names=names)
