"""Cross-schema language comparison (``equiv[S]``, Definition 1).

Any two schemas (DTD / SDTD / EDTD / normalised EDTD), possibly of different
schema languages, can be compared through their tree automata.  These
helpers are used by the bottom-up consistency algorithms, by the locality
checks of the top-down problems and throughout the tests.

The comparisons route through the process
:class:`~repro.engine.compilation.CompilationEngine`: verdicts and witness
trees are memoized by the tree-automaton fingerprint, so repeating a
comparison -- the typical shape of the ``cons[S]`` benchmarks, the maximal-
typing deduplication and the typing-order checks -- skips the exponential
joint reachable-subset construction entirely.  The uncached procedures stay
available in :mod:`repro.trees.automata`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.compilation import SCHEMA_TO_UTA_KIND, get_default_engine
from repro.schemas.dtd import DTD
from repro.schemas.edtd import EDTD, NormalizedEDTD
from repro.trees.automata import UnrankedTreeAutomaton, tree_language_is_empty
from repro.trees.document import Tree

Schema = Union[DTD, EDTD, NormalizedEDTD, UnrankedTreeAutomaton]


def schema_to_uta(schema: Schema) -> UnrankedTreeAutomaton:
    """Coerce any schema-like object into an unranked tree automaton.

    The conversion itself is memoized per schema object: validation and the
    many pairwise comparisons of the search loops reuse one automaton.
    """
    if isinstance(schema, UnrankedTreeAutomaton):
        return schema
    return get_default_engine().memo_identity(SCHEMA_TO_UTA_KIND, schema, schema.to_uta)


def schema_equivalent(left: Schema, right: Schema) -> bool:
    """Decide ``[left] = [right]`` for any mix of schema languages."""
    return get_default_engine().tree_equivalent(schema_to_uta(left), schema_to_uta(right))


def schema_includes(big: Schema, small: Schema) -> bool:
    """Decide ``[small] ⊆ [big]``."""
    return get_default_engine().tree_includes(schema_to_uta(big), schema_to_uta(small))


def schema_counterexample(left: Schema, right: Schema) -> Optional[tuple[str, Tree]]:
    """A witness tree separating the two languages, or ``None`` when equal."""
    return get_default_engine().tree_equivalence_counterexample(
        schema_to_uta(left), schema_to_uta(right)
    )


def schema_inclusion_counterexample(small: Schema, big: Schema) -> Optional[Tree]:
    """A tree in ``[small] − [big]``, or ``None`` when included."""
    return get_default_engine().tree_inclusion_counterexample(
        schema_to_uta(small), schema_to_uta(big)
    )


def schema_is_empty(schema: Schema) -> bool:
    """Decide ``[schema] = ∅``."""
    uta = schema_to_uta(schema)
    engine = get_default_engine()
    return engine.memo(
        "tree-empty", (engine.fingerprint(uta),), lambda: tree_language_is_empty(uta)
    )
