"""Cross-schema language comparison (``equiv[S]``, Definition 1).

Any two schemas (DTD / SDTD / EDTD / normalised EDTD), possibly of different
schema languages, can be compared through their tree automata.  These
helpers are used by the bottom-up consistency algorithms, by the locality
checks of the top-down problems and throughout the tests.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.schemas.dtd import DTD
from repro.schemas.edtd import EDTD, NormalizedEDTD
from repro.trees.automata import (
    UnrankedTreeAutomaton,
    tree_language_counterexample,
    tree_language_equivalence_counterexample,
    tree_language_equivalent,
    tree_language_includes,
    tree_language_is_empty,
)
from repro.trees.document import Tree

Schema = Union[DTD, EDTD, NormalizedEDTD, UnrankedTreeAutomaton]


def schema_to_uta(schema: Schema) -> UnrankedTreeAutomaton:
    """Coerce any schema-like object into an unranked tree automaton."""
    if isinstance(schema, UnrankedTreeAutomaton):
        return schema
    return schema.to_uta()


def schema_equivalent(left: Schema, right: Schema) -> bool:
    """Decide ``[left] = [right]`` for any mix of schema languages."""
    return tree_language_equivalent(schema_to_uta(left), schema_to_uta(right))


def schema_includes(big: Schema, small: Schema) -> bool:
    """Decide ``[small] ⊆ [big]``."""
    return tree_language_includes(schema_to_uta(big), schema_to_uta(small))


def schema_counterexample(left: Schema, right: Schema) -> Optional[tuple[str, Tree]]:
    """A witness tree separating the two languages, or ``None`` when equal."""
    return tree_language_equivalence_counterexample(schema_to_uta(left), schema_to_uta(right))


def schema_inclusion_counterexample(small: Schema, big: Schema) -> Optional[Tree]:
    """A tree in ``[small] − [big]``, or ``None`` when included."""
    return tree_language_counterexample(schema_to_uta(small), schema_to_uta(big))


def schema_is_empty(schema: Schema) -> bool:
    """Decide ``[schema] = ∅``."""
    return tree_language_is_empty(schema_to_uta(schema))
