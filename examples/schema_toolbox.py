#!/usr/bin/env python3
"""Bottom-up design: which schema language can describe the assembled document?

A data-integration scenario: a portal aggregates product data from several
suppliers, each exporting its catalogue fragment under its own local schema.
The portal wants a *global* schema for the assembled document -- and the
answer depends on the schema language (Table 2 of the paper):

* an EDTD (Relax NG) always exists,
* an XSD (single-type) exists iff the language is closed under
  ancestor-guarded subtree exchange,
* a DTD exists iff it is closed under subtree substitution,
* and the W3C's deterministic content models (dRE) can fail even when a DTD
  exists.

Run with::

    python examples/schema_toolbox.py
"""

from __future__ import annotations

from repro.api import bottom_up_design, dtd
from repro.core.consistency import check_consistency
from repro.schemas.content_model import Formalism


def report(title: str, design, formalism: Formalism = Formalism.NFA) -> None:
    print("=" * 70)
    print(title)
    print("=" * 70)
    print(f"kernel: {design.kernel}")
    for language in ("EDTD", "SDTD", "DTD"):
        result = check_consistency(design.kernel, design.typing, language, formalism)
        verdict = "yes" if result.consistent else "no "
        size = result.type_size if result.consistent else "-"
        print(f"  cons[{language:4s}] = {verdict}   |typeT(τn)| = {size}")
        if not result.consistent and result.counterexample is not None:
            print(f"      counterexample document: {result.counterexample}")
    print()


def main() -> None:
    # 1. Two suppliers feeding disjoint sections: every schema language works.
    harmless = bottom_up_design(
        {
            "f1": dtd("root_f1", {"root_f1": "product*", "product": "name, price"}),
            "f2": dtd("root_f2", {"root_f2": "supplier*", "supplier": "name"}),
        },
        "catalog(f1 sep f2)",
    )
    report("Scenario 1: disjoint sections (DTD-expressible)", harmless)

    # 2. Two suppliers feeding *sibling* sections with different inner shapes:
    #    the assembled language distinguishes the two section nodes by their
    #    position, which neither DTDs nor XSDs can express.
    positional = bottom_up_design(
        {
            "f1": dtd("root_f1", {"root_f1": "item", "item": "name, price"}),
            "f2": dtd("root_f2", {"root_f2": "item", "item": "name, stock"}),
        },
        "catalog(section(f1) section(f2))",
    )
    report("Scenario 2: positional constraints (EDTD only)", positional)

    # 3. A DTD exists but its required content model is not one-unambiguous,
    #    so the W3C's deterministic-expression restriction rejects it.
    ambiguous = bottom_up_design(
        {"f1": dtd("root_f1", {"root_f1": "(a | b)*, a, (a | b)"})},
        "doc(f1)",
    )
    report("Scenario 3: DTD exists for nFAs ...", ambiguous, Formalism.NFA)
    report("Scenario 3 (continued): ... but not with deterministic content models", ambiguous, Formalism.DRE)


if __name__ == "__main__":
    main()
