#!/usr/bin/env python3
"""A gallery of the paper's separation examples (Examples 2-5 and 9-11).

Each entry builds a word-level design ``<τ, w(fn)>``, runs the perfect-
automaton machinery of Section 6, and prints which of the typing notions of
Definition 12 (sound / local / maximal local / perfect) can be achieved --
reproducing the separations discussed in Section 2.4.

Run with::

    python examples/design_gallery.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.regex import regex_to_nfa
from repro.core.perfect import (
    PerfectAutomaton,
    word_all_maximal_local_typings,
    word_exists_perfect,
    word_find_local_typing,
)
from repro.core.words import KernelString


@dataclass(frozen=True)
class GalleryEntry:
    name: str
    target: str
    kernel: str
    note: str


ENTRIES = [
    GalleryEntry(
        "Example 2", "a*bc*", "f1 f2",
        "two incomparable maximal local typings, hence no perfect typing",
    ),
    GalleryEntry(
        "Example 3", "a*bc*", "f1 b f2",
        "the fixed b separates the functions: a perfect typing exists",
    ),
    GalleryEntry(
        "Example 4", "(ab)*", "f1 f2",
        "a unique maximal local typing which is still not perfect",
    ),
    GalleryEntry(
        "Example 5", "(ab)+", "f1 f2",
        "three maximal local typings",
    ),
    GalleryEntry(
        "Example 9", "abccde", "a f1 c f2 e",
        "the candidate (Ωn) strictly exceeds the local typing (b, cd)",
    ),
    GalleryEntry(
        "Example 10", "a(bc)*d", "a f1 f2 d",
        "the union of legal fragments is not even sound",
    ),
    GalleryEntry(
        "Example 11", "ab + ba", "f1 f2",
        "Ω is equivalent to τ although no perfect typing exists",
    ),
]


def describe_typing(typing) -> str:
    rendered = []
    for component in typing:
        words = sorted(component.enumerate_language(3))
        shown = ", ".join("".join(word) if word else "ε" for word in words[:4])
        more = " ..." if len(words) > 4 else ""
        rendered.append(f"{{{shown}{more}}}")
    return " · ".join(rendered) if rendered else "(no functions)"


def main() -> None:
    for entry in ENTRIES:
        target = regex_to_nfa(entry.target)
        kernel = KernelString.parse(entry.kernel)
        perfect = PerfectAutomaton(target, kernel)
        print("=" * 70)
        print(f"{entry.name}:  τ = {entry.target}   w = {entry.kernel}")
        print(f"  ({entry.note})")
        print(f"  compatible (some sound typing exists): {perfect.compatible}")
        local = word_find_local_typing(target, kernel)
        print(f"  local typing: {describe_typing(local) if local else 'none'}")
        maximal = word_all_maximal_local_typings(target, kernel)
        print(f"  maximal local typings: {len(maximal)}")
        for index, typing in enumerate(maximal, start=1):
            print(f"    #{index}: {describe_typing(typing)}")
        print(f"  perfect typing exists: {word_exists_perfect(target, kernel)}")
        omega = perfect.omega_typing()
        print(f"  candidate (Ωn): {describe_typing(omega)}")
        print()


if __name__ == "__main__":
    main()
