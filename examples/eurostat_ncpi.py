#!/usr/bin/env python3
"""The National Consumer Price Index scenario of Section 1 (Figures 1-6).

Eurostat maintains a kernel document with one docking point per national
statistics bureau.  This example walks through the whole story:

1. the global DTD τ (Figure 3) is propagated into the perfect typing of
   Figure 4 -- every country gets ``rooti -> nationalIndex*``;
2. each bureau validates its own data locally, and the soundness of the
   typing guarantees global validity without shipping any XML to Luxembourg
   (the byte counts of both strategies are printed);
3. the alternative global type τ' (Figure 5) is shown to be a *bad design*:
   it admits no perfect typing and every local typing silences all but one
   country;
4. the design <τ'', T1> (Figure 6) is shown to have exactly two maximal
   local typings and no perfect one.

Run with::

    python examples/eurostat_ncpi.py
"""

from __future__ import annotations

from repro.api import analyze_design
from repro.core.existence import find_maximal_local_typings, find_perfect_typing
from repro.core.locality import root_content_of
from repro.distributed.network import DistributedDocument
from repro.workloads import eurostat

COUNTRIES = ("FR", "AT", "IT", "UK")


def propagate_the_global_type() -> None:
    print("=" * 70)
    print("1. Propagating the global DTD of Figure 3 (top-down design)")
    print("=" * 70)
    design = eurostat.top_down_design(COUNTRIES)
    print("global type τ:")
    print(design.target.describe())
    print(f"kernel T0 held by Eurostat: {design.kernel}")
    typing = find_perfect_typing(design)
    assert typing is not None
    print("\nThe design admits a PERFECT typing (Figure 4):")
    for function in design.kernel.functions:
        schema = typing[function]
        print(f"  {function}: {schema.start} -> {schema.content(schema.start)}")


def validate_without_shipping_data() -> None:
    print()
    print("=" * 70)
    print("2. Local validation vs centralized validation")
    print("=" * 70)
    design = eurostat.top_down_design(COUNTRIES)
    typing = find_perfect_typing(design)
    documents = {"f0": eurostat.averages_document()}
    for index, function in enumerate(eurostat.country_functions(COUNTRIES)):
        documents[function] = eurostat.national_document(function, use_index_format=index % 2 == 0)
    distributed = DistributedDocument(design.kernel, documents)
    print(distributed.describe())
    distributed.propagate_typing(typing)
    distributed.network.reset()

    local = distributed.validate_locally()
    centralized = distributed.validate_centralized(design.target)
    print(f"\n  {local}")
    print(f"  {centralized}")
    saving = 100.0 * (1 - local.bytes_shipped / centralized.bytes_shipped)
    print(f"  -> local validation ships {saving:.1f}% fewer bytes, with the same verdict.")


def bad_design_figure5() -> None:
    print()
    print("=" * 70)
    print("3. The bad design τ' of Figure 5")
    print("=" * 70)
    design = eurostat.bad_design(COUNTRIES)
    print("global type τ' (all countries must use the same format):")
    print(design.target.describe())
    report = analyze_design(design, maximal_limit=4)
    print(f"\n  perfect typing exists: {report.has_perfect_typing}")
    print(f"  maximal local typings found: {len(report.maximal_local_typings)}")
    for index, typing in enumerate(report.maximal_local_typings, start=1):
        publishing = [
            function
            for function in eurostat.country_functions(COUNTRIES)
            if root_content_of(typing[function]).shortest_word() not in (None, ())
        ]
        print(f"  typing #{index}: countries allowed to publish anything at all: {publishing or 'none'}")
    print("  -> the format constraint cannot be controlled locally: in every local")
    print("     typing at most one country may publish data.")


def figure6_two_maximal_typings() -> None:
    print()
    print("=" * 70)
    print("4. The design <τ'', T1> of Figure 6")
    print("=" * 70)
    design = eurostat.figure6_design()
    print("global type τ'':")
    print(design.target.describe())
    print(f"kernel T1: {design.kernel}")
    typings = find_maximal_local_typings(design)
    print(f"\n  perfect typing exists: {design.exists_perfect_typing()}")
    print(f"  maximal local typings: {len(typings)}")
    for index, typing in enumerate(typings, start=1):
        print(f"  -- maximal local typing #{index}:")
        for function in design.kernel.functions:
            schema = typing[function]
            print(f"     {function}: {schema.start} -> {schema.content(schema.start)}")


def main() -> None:
    propagate_the_global_type()
    validate_without_shipping_data()
    bad_design_figure5()
    figure6_two_maximal_typings()


if __name__ == "__main__":
    main()
