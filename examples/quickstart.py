#!/usr/bin/env python3
"""Quickstart: propagate a global schema into local schemas.

The example of Section 1 in miniature: a document is assembled from two
external resources (``f1`` and ``f2``) around a fixed ``b`` element, and the
designer wants each resource to be checkable *locally* against its own
schema while guaranteeing the global schema ``s -> a*, b, c*``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import analyze_design, bottom_up_design, dtd, kernel, top_down_design


def main() -> None:
    # ----------------------------------------------------------------- #
    # Top-down design: start from the global type, derive local types.
    # ----------------------------------------------------------------- #
    global_type = dtd("s", {"s": "a*, b, c*"})
    design = top_down_design(global_type, kernel("s(f1 b f2)"))

    report = analyze_design(design)
    print("== top-down design ==")
    print(report.summary())
    print()

    perfect = report.perfect_typing
    assert perfect is not None, "this design has a perfect typing (Example 3 of the paper)"
    print("The resource f1 may publish any forest matching:", perfect["f1"].content(perfect["f1"].start))
    print("The resource f2 may publish any forest matching:", perfect["f2"].content(perfect["f2"].start))
    print()

    # ----------------------------------------------------------------- #
    # Bottom-up design: start from the local types, derive the global one.
    # ----------------------------------------------------------------- #
    local_types = {
        "f1": dtd("root_f1", {"root_f1": "a*"}),
        "f2": dtd("root_f2", {"root_f2": "c*"}),
    }
    bottom_up = bottom_up_design(local_types, kernel("s(f1 b f2)"))
    bottom_report = analyze_design(bottom_up)
    print("== bottom-up design ==")
    print(bottom_report.summary())

    result = bottom_report.consistency["DTD"]
    assert result.consistent
    print()
    print("The enforced global type typeT(τn) is:")
    print(result.result_type.describe())


if __name__ == "__main__":
    main()
