"""Figure 7 / Algorithm 1 -- constructing the perfect automaton Ω(A, w).

Lemma 6.6 states that Ω is built in polynomial time and has size
``O(n · k^3)`` for an ``n``-function kernel and a ``k``-state automaton.
The benchmark constructs Ω for growing targets and kernels, measures its
size and the number of legal local automata per gap, and checks Lemma 6.1
(``[Ω] ⊆ [A]``) on every instance.
"""

from __future__ import annotations

import pytest

from repro.automata.equivalence import includes
from repro.automata.regex import regex_to_nfa
from repro.core.perfect import PerfectAutomaton
from repro.core.words import KernelString


def family(k: int, functions: int) -> tuple:
    """Target ``(x1 ... xk)+`` with a kernel of ``functions`` docking points."""
    symbols = ", ".join(f"x{i}" for i in range(1, k + 1))
    target = regex_to_nfa(f"({symbols})+", names=True)
    kernel = KernelString([()] * (functions + 1), [f"f{i}" for i in range(1, functions + 1)])
    return target, kernel


@pytest.mark.parametrize("k", (2, 4, 8))
def test_build_perfect_automaton(benchmark, k):
    target, kernel = family(k, functions=2)
    perfect = benchmark(lambda: PerfectAutomaton(target, kernel))
    assert perfect.compatible


@pytest.mark.parametrize("functions", (1, 2, 3, 4))
def test_build_with_many_functions(benchmark, functions):
    target, kernel = family(3, functions)
    perfect = benchmark(lambda: PerfectAutomaton(target, kernel))
    assert perfect.compatible


def test_omega_size_and_lemma_6_1(benchmark, table):
    rows = []
    for k in (2, 4, 8):
        for functions in (1, 2, 3):
            target, kernel = family(k, functions)
            perfect = PerfectAutomaton(target, kernel)
            omega = perfect.omega_nfa()
            fragment_counts = [len(perfect.fragment_endpoints(gap)) for gap in range(1, functions + 1)]
            assert includes(perfect.target, omega)  # Lemma 6.1
            rows.append([k, functions, omega.size, fragment_counts])
    table(
        "Figure 7 (perfect automaton sizes)",
        ["target states k", "functions n", "|Ω|", "|Aut(Ωi)| per gap"],
        rows,
    )
    # Polynomial growth: the largest instance stays well below k^3 * n * constant.
    largest = rows[-1]
    assert largest[2] < 20 * (8 ** 2) * 3
    target, kernel = family(8, 3)
    benchmark(lambda: PerfectAutomaton(target, kernel).omega_nfa())


def test_example_figure7_style_instance(benchmark):
    """A concrete instance in the spirit of Figure 7's drawing."""
    target = regex_to_nfa("a, (b | c)*, d", names=True)
    kernel = KernelString.parse("a f1 d", names=True)
    perfect = benchmark(lambda: PerfectAutomaton(target, kernel))
    omega = perfect.omega_typing()
    assert len(omega) == 1
    assert includes(perfect.target, kernel.build(list(omega)))
