"""Figures 3 and 4 -- propagating the global DTD τ into the perfect typing.

Figure 3 gives the global DTD; Figure 4 gives the local types
``rooti -> nationalIndex*`` the paper presents as the perfect typing of the
design.  The benchmark runs ``∃-perf`` on the Eurostat design for a growing
number of countries, checks that the computed typing is exactly Figure 4
(up to language equivalence) and that it verifies as perfect.
"""

from __future__ import annotations

import pytest

from repro.automata.equivalence import equivalent
from repro.automata.regex import regex_to_nfa
from repro.core.existence import find_perfect_typing
from repro.core.locality import is_perfect, root_content_of
from repro.workloads import eurostat

COUNTRY_COUNTS = (2, 4, 8)


@pytest.mark.parametrize("countries", COUNTRY_COUNTS)
def test_find_the_figure4_typing(benchmark, countries):
    design = eurostat.top_down_design(countries)
    typing = benchmark(find_perfect_typing, design)
    assert typing is not None
    assert typing.equivalent_to(eurostat.figure4_typing(countries))
    for function in eurostat.country_functions(countries):
        assert equivalent(
            root_content_of(typing[function]), regex_to_nfa("nationalIndex*", names=True)
        )


@pytest.mark.parametrize("countries", (2, 4))
def test_verify_the_figure4_typing(benchmark, countries):
    design = eurostat.top_down_design(countries)
    typing = eurostat.figure4_typing(countries)
    assert benchmark(is_perfect, design, typing)


def test_reported_typing_table(benchmark, table):
    design = eurostat.top_down_design(2)
    typing = find_perfect_typing(design)
    rows = [
        [function, f"{schema.start} -> {schema.content(schema.start)}"]
        for function, schema in typing.items()
    ]
    table("Figure 4 (the perfect typing found)", ["resource", "root rule"], rows)
    assert any("nationalIndex*" in str(row[1]) for row in rows)
    benchmark(find_perfect_typing, design)
