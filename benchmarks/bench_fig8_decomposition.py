"""Figure 8 -- decomposing the legal local automata into disjoint cells (Dec(Ωi)).

Figure 8 illustrates how the (overlapping) local automata of one gap are
partitioned into at most ``2^k - 1`` pairwise-disjoint cells; Theorem 6.11
builds the existence procedures for local/maximal typings on top of this
decomposition.  The benchmark computes the decomposition for gaps with a
growing number of local automata and checks the structural properties the
figure depicts: cells are non-empty, pairwise disjoint, and their union is
exactly ``Ωi``.
"""

from __future__ import annotations

import pytest

from repro.automata import operations as ops
from repro.automata.equivalence import disjoint, equivalent
from repro.automata.regex import regex_to_nfa
from repro.core.perfect import PerfectAutomaton
from repro.core.words import KernelString

DESIGNS = {
    "example-2": ("a*bc*", "f1 f2"),
    "example-5": ("(ab)+", "f1 f2"),
    "example-10": ("a(bc)*d", "a f1 f2 d"),
    "three-way": ("a*b?c* + c*", "f1 f2"),
}


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_decomposition_construction(benchmark, name):
    expression, kernel_text = DESIGNS[name]
    perfect = PerfectAutomaton(regex_to_nfa(expression), KernelString.parse(kernel_text))
    cells_per_gap = benchmark(perfect.decompositions)
    for gap, cells in enumerate(cells_per_gap, start=1):
        fragments = perfect.local_automata(gap)
        assert 1 <= len(cells) <= 2 ** len(fragments) - 1


def test_decomposition_properties(benchmark, table):
    rows = []
    for name, (expression, kernel_text) in sorted(DESIGNS.items()):
        perfect = PerfectAutomaton(regex_to_nfa(expression), KernelString.parse(kernel_text))
        for gap in range(1, perfect.kernel.n + 1):
            fragments = perfect.local_automata(gap)
            cells = perfect.decomposition(gap)
            # Pairwise disjoint...
            for i in range(len(cells)):
                for j in range(i + 1, len(cells)):
                    assert disjoint(cells[i], cells[j])
            # ... and their union is Ωi.
            union = ops.union_all(cells).with_alphabet(perfect.alphabet)
            assert equivalent(union, perfect.omega_component(gap), perfect.alphabet)
            rows.append([name, gap, len(fragments), len(cells)])
    table(
        "Figure 8 (decomposition of the local automata)",
        ["design", "gap", "|Aut(Ωi)|", "|Dec(Ωi)| (non-empty cells)"],
        rows,
    )
    perfect = PerfectAutomaton(regex_to_nfa("(ab)+"), KernelString.parse("f1 f2"))
    benchmark(perfect.decompositions)
