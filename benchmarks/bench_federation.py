"""The pod federation under load: publish latency across directory + pods.

The pytest-benchmark view of the ``federation_publish_2pods`` scenario
that ``run_all.py`` records into ``BENCH_core.json``: a directory plus
two peer pods are booted (thread spawn -- in-process servers on real
loopback sockets), a workload's publications are routed to the owning
pod, and each timed round re-publishes the steady state and reads the
directory's global verdict.  Relative to the single-server scenarios
this adds the orchestrator's routing plus the pod's ``peer_verdict``
push and the directory round-trip per publication.

The module doubles as the CI smoke entry point::

    PYTHONPATH=src python benchmarks/bench_federation.py --smoke

which boots a 2-pod federation, replays a workload, checks the global
verdicts and merged state digest against the in-process runtime, shuts
down, and prints a JSON summary.
"""

from __future__ import annotations

import pytest

from repro.distributed.network import DistributedDocument
from repro.distributed.runtime import ValidationRuntime
from repro.federation import Federation
from repro.trees.xml_io import tree_to_xml
from repro.workloads.synthetic import distributed_workload

WORKLOAD_DOCUMENTS = 14


def build(peers: int = 4, seed: int = 0, documents: int = WORKLOAD_DOCUMENTS):
    return distributed_workload(
        peers=peers, documents=documents, seed=seed, invalid_rate=0.05,
        records=5, fields=3,
    )


@pytest.fixture
def federated():
    """A running 2-pod thread-spawn federation; closed (leak-checked) per test."""
    import threading

    workload = build()
    federation = Federation(
        workload.kernel, workload.typing, workload.initial_documents,
        pods=2, spawn="thread", workers=2,
    )
    try:
        yield federation, workload
    finally:
        assert federation.close()["clean"]
    leaked = [t.name for t in threading.enumerate() if t.name.startswith("repro-")]
    assert leaked == [], f"federation threads leaked: {leaked}"


def test_publish_roundtrip_latency(benchmark, federated):
    """One publish through the owning pod, verdict push included."""
    federation, workload = federated
    payload = tree_to_xml(workload.initial_documents["f1"])
    federation.publish("f1", payload)  # first sight: validates
    result = benchmark(lambda: federation.publish("f1", payload))
    assert result["clean"] is True


def test_global_verdict_roundtrip(benchmark, federated):
    """Reading the directory's collected verdict (no publication)."""
    federation, workload = federated
    for function, doc in workload.initial_documents.items():
        federation.publish(function, tree_to_xml(doc))
    verdict = benchmark(federation.global_verdict)
    assert verdict["complete"]


def test_full_round_republish(benchmark, federated):
    """A whole round of steady-state re-publications plus the verdict."""
    federation, workload = federated
    payloads = {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()}
    for function, payload in payloads.items():
        federation.publish(function, payload)

    def round_trip():
        for function, payload in payloads.items():
            federation.publish(function, payload)
        return federation.global_verdict()

    verdict = benchmark(round_trip)
    assert verdict["complete"]


# --------------------------------------------------------------------------- #
# the CI smoke entry point
# --------------------------------------------------------------------------- #


def _replay_in_process(workload):
    document = DistributedDocument(workload.kernel, dict(workload.initial_documents))
    with ValidationRuntime(document, max_workers=2) as runtime:
        runtime.propagate_typing(workload.typing)
        for function, doc in workload.initial_documents.items():
            runtime.publish(function, tree_to_xml(doc))
        for event in workload.events:
            runtime.publish(event.function, tree_to_xml(event.document))
        verdict = runtime.validate_locally().valid
        return verdict, runtime.state_digest()


def smoke() -> dict:
    """Boot, replay, differential-check, shut down; returns the CI summary."""
    import threading
    import time

    workload = build()
    expected_verdict, expected_digest = _replay_in_process(workload)
    latencies_ms = []
    with Federation(
        workload.kernel, workload.typing, workload.initial_documents,
        pods=2, spawn="thread", workers=2,
    ) as federation:
        publications = [
            *workload.initial_documents.items(),
            *((event.function, event.document) for event in workload.events),
        ]
        for function, doc in publications:
            started = time.perf_counter()
            federation.publish(function, tree_to_xml(doc))
            latencies_ms.append(1000 * (time.perf_counter() - started))
        verdict = federation.global_verdict()
        digest = federation.state_digest()
        description = federation.describe()
        clean = federation.close()["clean"]
    leaked = [t.name for t in threading.enumerate() if t.name.startswith("repro-")]
    assert leaked == [], f"federation threads leaked: {leaked}"
    assert clean, "federation shutdown was not clean"
    assert verdict["complete"], verdict
    assert verdict["valid"] == expected_verdict
    assert digest == expected_digest
    return {
        "pods": len(description["pods"]),
        "spawn": description["spawn"],
        "publications": len(publications),
        "global_verdict": verdict["valid"],
        "verdict_matches_runtime": verdict["valid"] == expected_verdict,
        "digest_matches_runtime": digest == expected_digest,
        "mean_publish_ms": round(sum(latencies_ms) / len(latencies_ms), 4),
        "max_publish_ms": round(max(latencies_ms), 4),
        "clean_shutdown": clean,
        "leaked_threads": leaked,
    }


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="run the CI smoke sequence")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run the timings via pytest; the script entry point only supports --smoke")
    summary = smoke()
    print(json.dumps(summary, indent=2, sort_keys=True))
    print("\nfederation smoke OK: verdicts and digest match the runtime, shutdown clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
