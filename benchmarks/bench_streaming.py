"""Streaming (no-tree) validation vs the tree-based path.

The streaming subsystem's two claims, measured:

* **wall-clock** -- validating a publication straight from its bytes
  (events -> per-frame DFA steps) beats parse-to-``Tree`` +
  ``BatchValidator``, because no per-node Python structure is ever built;
* **memory** -- working set is O(document depth): a document 20x wider
  allocates the *same* peak, and documents deeper than Python's recursion
  limit (which the tree path cannot even represent) validate fine.

``run_all.py`` records the wall-clock comparison into ``BENCH_core.json``
(scenarios ``local_validation_8`` / ``streaming_validate_{8,100}``); this
module is the pytest-benchmark view plus the CI smoke / memory-gate entry
point::

    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.engine import BatchValidator
from repro.schemas.dtd import DTD
from repro.streaming import StreamingValidator, XMLEventSource, streaming_validator_for
from repro.trees.xml_io import tree_from_xml
from repro.workloads.synthetic import distributed_workload

PEERS = 8
DOCUMENTS = 40

#: The wide/deep synthetic schemas of the memory gate.
WIDE_DTD = DTD("r", {"r": "a*"})
DEEP_DTD = DTD("a", {"a": "a?"})


def publication_stream(peers: int = PEERS, documents: int = DOCUMENTS):
    """The driver's publication stream as ``(function, payload-bytes)`` pairs."""
    from repro.service.loadgen import publication_stream as loadgen_stream

    workload = distributed_workload(peers=peers, documents=documents, seed=0, invalid_rate=0.05)
    return workload, [(f, p.encode("utf-8")) for f, p in loadgen_stream(workload)]


def wide_payload(leaves: int) -> bytes:
    return b"<r>" + b"<a/>" * leaves + b"</r>"


def deep_payload(depth: int) -> bytes:
    return b"<a>" * depth + b"</a>" * depth


# --------------------------------------------------------------------------- #
# pytest-benchmark view
# --------------------------------------------------------------------------- #


def test_tree_path_replay(benchmark):
    """Baseline: parse every payload into a Tree, validate bottom-up."""
    workload, pairs = publication_stream()
    validators = {f: BatchValidator(workload.typing[f]) for f in workload.initial_documents}
    result = benchmark(lambda: [validators[f].validate(tree_from_xml(p)) for f, p in pairs])
    assert len(result) == len(pairs)


def test_streaming_replay(benchmark):
    """The streaming path over the same bytes: must return the same verdicts."""
    workload, pairs = publication_stream()
    validators = {f: BatchValidator(workload.typing[f]) for f in workload.initial_documents}
    machines = {f: streaming_validator_for(workload.typing[f]) for f in workload.initial_documents}
    expected = [validators[f].validate(tree_from_xml(p)) for f, p in pairs]
    result = benchmark(lambda: [machines[f].validate_payload(p) for f, p in pairs])
    assert result == expected


def test_streaming_chunked_replay(benchmark):
    """Chunked feeding (the wire shape) costs about the same as whole payloads."""
    workload, pairs = publication_stream()
    machines = {f: streaming_validator_for(workload.typing[f]) for f in workload.initial_documents}
    result = benchmark(
        lambda: [machines[f].validate_payload(p, chunk_bytes=4096) for f, p in pairs]
    )
    assert len(result) == len(pairs)


@pytest.mark.parametrize("depth", [100, 5000])
def test_streaming_deep_documents(benchmark, depth):
    """Depth beyond the tree path's recursion limit is routine for streaming."""
    machine = StreamingValidator(DEEP_DTD)
    payload = deep_payload(depth)
    assert benchmark(lambda: machine.validate_payload(payload)) is True


# --------------------------------------------------------------------------- #
# the CI smoke entry point: differential sanity + the O(depth) memory gate
# --------------------------------------------------------------------------- #


def _streaming_peak(machine: StreamingValidator, payload: bytes, chunk_bytes: int) -> int:
    """Peak traced allocation of one chunk-fed streaming validation."""
    tracemalloc.start()
    try:
        run = machine.run()
        source = XMLEventSource()
        for start in range(0, len(payload), chunk_bytes):
            source.pump(payload[start : start + chunk_bytes], run)
        run.consume(source.close())
        assert run.verdict() is True
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def smoke() -> dict:
    """Differential sanity + the memory gate (fails loudly on regression)."""
    workload, pairs = publication_stream(peers=4, documents=16)
    validators = {f: BatchValidator(workload.typing[f]) for f in workload.initial_documents}
    machines = {f: StreamingValidator(workload.typing[f]) for f in workload.initial_documents}
    for function, payload in pairs:
        tree_verdict = validators[function].validate(tree_from_xml(payload))
        assert machines[function].validate_payload(payload) is tree_verdict, function

    # Gate 1: no per-node allocation.  A document 20x wider must not cost
    # a meaningfully larger peak -- the frame stack is the same (depth 2),
    # so peak memory is dominated by the chunk buffer and parser, not by
    # the node count.  The tree path's peak scales linearly for contrast.
    machine = StreamingValidator(WIDE_DTD)
    narrow_peak = _streaming_peak(machine, wide_payload(2_000), chunk_bytes=8192)
    wide_peak = _streaming_peak(machine, wide_payload(40_000), chunk_bytes=8192)
    assert wide_peak < 2 * narrow_peak + 65536, (
        f"streaming peak grew with document width: {narrow_peak} -> {wide_peak} bytes"
    )
    tracemalloc.start()
    tree = tree_from_xml(wide_payload(40_000))
    tree_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    del tree
    assert wide_peak * 5 < tree_peak, (
        f"streaming peak {wide_peak} is not clearly below the tree path's {tree_peak}"
    )

    # Gate 2: O(depth) really means depth is the only growth axis -- and
    # depth far beyond the recursion limit (which the tree path cannot even
    # parse into a Tree) validates fine.
    deep = StreamingValidator(DEEP_DTD)
    depth = 50_000
    assert deep.validate_payload(deep_payload(depth), chunk_bytes=8192) is True
    try:
        tree_from_xml(deep_payload(depth))
    except RecursionError:
        deep_tree_path = "RecursionError"
    else:  # pragma: no cover - would itself be a finding
        deep_tree_path = "ok"

    return {
        "differential_documents": len(pairs),
        "wide_narrow_peak_bytes": narrow_peak,
        "wide_wide_peak_bytes": wide_peak,
        "tree_peak_bytes": tree_peak,
        "deep_depth_validated": depth,
        "deep_tree_path": deep_tree_path,
    }


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="run the CI smoke + memory gate")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run the timings via pytest; the script entry point only supports --smoke")
    summary = smoke()
    print(json.dumps(summary, indent=2, sort_keys=True))
    print("\nstreaming smoke OK: verdicts agree, peak memory is O(depth), deep documents validate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
