"""The validation service under load: latency and throughput over loopback.

The pytest-benchmark view of the service scenarios that ``run_all.py``
records into ``BENCH_core.json`` (``service_publish_p50/p99``,
``service_throughput_8/100``): a server is booted on an ephemeral
loopback port and driven through real sockets -- frame encoding, asyncio
scheduling, admission-controller batching and the runtime's fingerprint
fast path are all on the clock.

The module doubles as the CI smoke entry point::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke

which boots a server, replays a small closed- and open-loop workload,
checks the verdicts and graceful shutdown, and prints a JSON summary.
"""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient
from repro.service.loadgen import run_load
from repro.service.server import ServiceHandle, ValidationServer
from repro.trees.xml_io import tree_to_xml
from repro.workloads.synthetic import distributed_workload

WORKLOAD_DOCUMENTS = 40


def build(peers: int, seed: int = 0, documents: int = WORKLOAD_DOCUMENTS):
    return distributed_workload(
        peers=peers, documents=documents, seed=seed, invalid_rate=0.05
    )


@pytest.fixture
def served():
    """A running server; closed (and leak-checked) per test."""
    import threading

    server = ValidationServer()
    with ServiceHandle(server).start() as handle:
        yield handle
    leaked = [t.name for t in threading.enumerate() if t.name.startswith("repro-")]
    assert leaked == [], f"service threads leaked: {leaked}"


def test_publish_roundtrip_latency(benchmark, served):
    """One blocking publish round-trip (clean re-publication steady state)."""
    workload = build(8)
    with ServiceClient(served.host, served.port) as client:
        client.register_design(
            "bench",
            str(workload.kernel.tree),
            dict(workload.typing.items()),
            {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()},
        )
        payload = tree_to_xml(workload.initial_documents["f1"])
        client.publish("bench", "f1", payload)  # first sight: validates
        result = benchmark(lambda: client.publish("bench", "f1", payload))
        assert result["clean"] is True and result["valid"] is True


def test_closed_loop_throughput(benchmark, served):
    """The full closed-loop replay (what service_throughput_8 records)."""
    workload = build(8, documents=24)
    report = run_load(served.host, served.port, workload, design="bench", clients=4, pipeline=8)
    assert report.errors == 0
    assert report.publications == 17 * 8
    result = benchmark(
        lambda: run_load(
            served.host, served.port, workload, design="bench", clients=4, pipeline=8,
            register=False,
        )
    )
    assert result.errors == 0


def test_wire_fastpath_no_engine_misses(served):
    """Byte-identical re-publication over the wire: zero batch-validate misses."""
    workload = build(8, documents=8)
    with ServiceClient(served.host, served.port) as client:
        client.register_design(
            "fast",
            str(workload.kernel.tree),
            dict(workload.typing.items()),
            {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()},
        )
        payloads = {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()}
        for function, payload in payloads.items():
            client.publish("fast", function, payload)
        before = client.stats()["designs"]["fast"]["engine"]["by_kind"]["batch-validate"]["misses"]
        for function, payload in payloads.items():
            assert client.publish("fast", function, payload)["clean"] is True
        after = client.stats()["designs"]["fast"]["engine"]["by_kind"]["batch-validate"]["misses"]
        assert after - before == 0


def test_open_loop_latency_under_offered_rate(benchmark, served):
    """Open loop at a fixed offered rate: latency, not saturation."""
    workload = build(4, documents=12)
    run_load(served.host, served.port, workload, design="open", clients=2, mode="open", rate=2000.0)
    result = benchmark(
        lambda: run_load(
            served.host, served.port, workload, design="open", clients=2, mode="open",
            rate=2000.0, register=False,
        )
    )
    assert result.errors == 0
    assert result.p50_ms <= result.p99_ms


# --------------------------------------------------------------------------- #
# the CI smoke entry point
# --------------------------------------------------------------------------- #


def smoke() -> dict:
    """Boot, drive, shut down; returns the JSON-ready summary CI prints."""
    import threading

    workload = build(8, documents=24)
    with ServiceHandle(ValidationServer()).start() as handle:
        closed = run_load(handle.host, handle.port, workload, design="smoke", clients=4, pipeline=8)
        reheat = run_load(
            handle.host, handle.port, workload, design="smoke", clients=4, pipeline=8,
            register=False,
        )
        opened = run_load(
            handle.host, handle.port, workload, design="smoke", mode="open", rate=1000.0,
            clients=2, register=False,
        )
    leaked = [t.name for t in threading.enumerate() if t.name.startswith("repro-")]
    assert leaked == [], f"service threads leaked: {leaked}"
    assert closed.errors == reheat.errors == opened.errors == 0
    assert closed.final_valid == reheat.final_valid == opened.final_valid
    return {
        "closed_cold": closed.to_dict(),
        "closed_warm": reheat.to_dict(),
        "open": opened.to_dict(),
        "leaked_threads": leaked,
    }


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="run the CI smoke sequence")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run the timings via pytest; the script entry point only supports --smoke")
    summary = smoke()
    print(json.dumps(summary, indent=2, sort_keys=True))
    print("\nservice smoke OK: round-trips verified, shutdown clean, no leaked threads")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
