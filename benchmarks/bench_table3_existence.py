"""Table 3 (rows D-E) -- existence and construction: ∃-loc, ∃-ml, ∃-perf.

The existence problems are the expensive ones (PSPACE- to EXPSPACE-hard for
words, EXPTIME-hard to 2-EXPSPACE for EDTDs).  The benchmark times the
search procedures -- perfect-automaton construction plus decomposition-cell
enumeration (Theorem 6.11) and, for EDTDs, κ enumeration (Corollary 4.14) --
on growing designs, and records how the answers split between the three
notions (every perfect typing is local, but not conversely).
"""

from __future__ import annotations

import time

import pytest

from repro.core.existence import (
    exists_maximal_local_typing,
    find_local_typing,
    find_maximal_local_typings,
    find_perfect_typing,
)
from repro.workloads import eurostat, synthetic


@pytest.mark.parametrize("k", (2, 3, 4))
def test_exists_perfect_on_separable_designs(benchmark, k):
    design = synthetic.separable_topdown_design(k)
    typing = benchmark(find_perfect_typing, design)
    assert typing is not None


@pytest.mark.parametrize("k", (2, 3, 4))
def test_exists_local_on_interleaved_designs(benchmark, k):
    design = synthetic.word_topdown_design(k)
    typing = benchmark(find_local_typing, design)
    assert typing is not None


@pytest.mark.parametrize("k", (2, 3))
def test_enumerate_maximal_local_typings(benchmark, k):
    design = synthetic.word_topdown_design(k)
    typings = benchmark(find_maximal_local_typings, design, limit=8)
    assert len(typings) >= 1
    assert find_perfect_typing(design) is None


@pytest.mark.parametrize("k", (1, 2, 3))
def test_exists_local_edtd(benchmark, k):
    design = synthetic.edtd_topdown_design(k)
    assert benchmark(exists_maximal_local_typing, design)


def test_eurostat_existence(benchmark):
    design = eurostat.top_down_design(countries=3)
    typing = benchmark(find_perfect_typing, design)
    assert typing is not None


def test_existence_cost_shape(benchmark, table):
    """∃-perf (a single perfect-automaton check) is cheaper than enumerating all maximal typings."""
    design = synthetic.word_topdown_design(2)

    start = time.perf_counter()
    find_perfect_typing(design)
    perf_time = time.perf_counter() - start
    start = time.perf_counter()
    typings = find_maximal_local_typings(design, limit=8)
    ml_time = time.perf_counter() - start

    table(
        "Table 3 (existence problems on the Example-5 family)",
        ["problem", "answer", "time"],
        [
            ["∃-perf", "no", f"{1000 * perf_time:.2f} ms"],
            ["∃-ml (enumerate all)", f"{len(typings)} maximal typings", f"{1000 * ml_time:.2f} ms"],
        ],
    )
    assert ml_time >= perf_time
    benchmark(find_maximal_local_typings, design, limit=8)
