"""Section 1 motivation -- validating a document that spans several machines.

"It becomes often cumbersome to verify the validity, e.g., the type, of such
a hierarchical structure spanning several machines."  This benchmark
quantifies the pay-off of the paper's local typings on the NCPI scenario:
once the perfect typing of Figure 4 has been propagated, each bureau
validates its own data and only boolean acknowledgements travel, whereas
centralized validation must ship every national document to Luxembourg.
"""

from __future__ import annotations

import random

import pytest

from repro.core.existence import find_perfect_typing
from repro.distributed.network import DistributedDocument
from repro.workloads import eurostat, synthetic

COUNTRY_COUNTS = (2, 4, 8)


def build(countries: int, seed: int = 0) -> DistributedDocument:
    rng = random.Random(seed)
    kernel = eurostat.kernel_document(countries)
    documents = {"f0": eurostat.averages_document()}
    for index, function in enumerate(eurostat.country_functions(countries)):
        goods = tuple(f"good{rng.randint(1, 5)}" for _ in range(rng.randint(2, 6)))
        documents[function] = eurostat.national_document(
            function, goods=goods, use_index_format=index % 2 == 0
        )
    return DistributedDocument(kernel, documents)


@pytest.mark.parametrize("countries", COUNTRY_COUNTS)
def test_centralized_validation(benchmark, countries):
    distributed = build(countries)
    report = benchmark(distributed.validate_centralized, eurostat.global_dtd())
    assert report.valid


@pytest.mark.parametrize("countries", COUNTRY_COUNTS)
def test_local_validation(benchmark, countries):
    distributed = build(countries)
    typing = find_perfect_typing(eurostat.top_down_design(countries))
    distributed.propagate_typing(typing)
    report = benchmark(distributed.validate_locally)
    assert report.valid


def test_bytes_and_messages_comparison(benchmark, table):
    rows = []
    for countries in COUNTRY_COUNTS:
        distributed = build(countries)
        typing = find_perfect_typing(eurostat.top_down_design(countries))
        distributed.propagate_typing(typing)
        distributed.network.reset()
        local = distributed.validate_locally()
        centralized = distributed.validate_centralized(eurostat.global_dtd())
        saving = 100.0 * (1 - local.bytes_shipped / centralized.bytes_shipped)
        rows.append(
            [
                countries,
                centralized.bytes_shipped,
                local.bytes_shipped,
                f"{saving:.1f}%",
                local.valid == centralized.valid,
            ]
        )
    table(
        "Local vs centralized validation of the NCPI document",
        ["countries", "centralized bytes", "local bytes", "bytes saved", "same verdict"],
        rows,
    )
    assert all(row[4] for row in rows)
    assert all(row[2] < row[1] for row in rows)
    distributed = build(COUNTRY_COUNTS[-1])
    typing = find_perfect_typing(eurostat.top_down_design(COUNTRY_COUNTS[-1]))
    distributed.propagate_typing(typing)
    benchmark(distributed.validate_locally)


def test_local_validation_detects_bad_data(benchmark):
    distributed = build(3)
    typing = find_perfect_typing(eurostat.top_down_design(3))
    distributed.propagate_typing(typing)
    distributed.update_resource("f2", synthetic.flat_kernel(0, root="root_f2").tree)
    report = benchmark(distributed.validate_locally)
    # An empty answer is still valid under nationalIndex*; publish garbage instead.
    from repro.trees.term import parse_term

    distributed.update_resource("f2", parse_term("root_f2(country)"))
    assert not distributed.validate_locally().valid
    assert report is not None
