"""Figure 5 -- the bad design τ': the format constraint cannot be controlled locally.

The paper's point: τ' forces all countries onto one of the two nationalIndex
formats, a constraint no assignment of independent local types can express.
The benchmark runs the analysis for a growing number of countries and checks
the formal rendition of the claim (see EXPERIMENTS.md): no perfect typing
exists, and in every maximal local typing at most one country is allowed to
publish anything -- i.e. genuine distribution is impossible under τ'.
"""

from __future__ import annotations

import pytest

from repro.core.existence import find_maximal_local_typings, find_perfect_typing
from repro.core.locality import root_content_of
from repro.workloads import eurostat

COUNTRY_COUNTS = (2, 3)


@pytest.mark.parametrize("countries", COUNTRY_COUNTS)
def test_no_perfect_typing(benchmark, countries):
    design = eurostat.bad_design(countries)
    assert benchmark(find_perfect_typing, design) is None


@pytest.mark.parametrize("countries", COUNTRY_COUNTS)
def test_local_typings_are_degenerate(benchmark, countries):
    design = eurostat.bad_design(countries)
    typings = benchmark(find_maximal_local_typings, design)
    assert typings
    for typing in typings:
        publishing = [
            function
            for function in eurostat.country_functions(countries)
            if root_content_of(typing[function]).shortest_word() not in (None, ())
        ]
        assert len(publishing) <= 1


def test_good_vs_bad_design_table(benchmark, table):
    good = eurostat.top_down_design(2)
    bad = eurostat.bad_design(2)
    rows = [
        ["τ (Figure 3)", good.exists_perfect_typing(), "every country publishes independently"],
        ["τ' (Figure 5)", bad.exists_perfect_typing(), "at most one country may publish"],
    ]
    table("Figure 5 (good vs bad design)", ["global type", "perfect typing", "distribution"], rows)
    assert rows[0][1] and not rows[1][1]
    benchmark(find_perfect_typing, bad)
