"""Figure 1 / Figure 2 -- the distributed NCPI document and its materialisation.

Figure 1 shows the NCPI document spanning Eurostat plus one peer per
country; Figure 2 shows a materialised extension.  The benchmark builds the
distributed document for a growing number of countries, times the
materialisation (every docking point is activated and its forest shipped to
the coordinator) and checks that the resulting document is exactly the
Figure 2 shape: valid for the global DTD of Figure 3.
"""

from __future__ import annotations

import pytest

from repro.distributed.network import DistributedDocument
from repro.workloads import eurostat

COUNTRY_COUNTS = (2, 4, 8, 16)


def build(countries: int) -> DistributedDocument:
    kernel = eurostat.kernel_document(countries)
    documents = {"f0": eurostat.averages_document()}
    for index, function in enumerate(eurostat.country_functions(countries)):
        documents[function] = eurostat.national_document(function, use_index_format=index % 2 == 0)
    return DistributedDocument(kernel, documents)


@pytest.mark.parametrize("countries", COUNTRY_COUNTS)
def test_materialise_ncpi(benchmark, countries):
    distributed = build(countries)
    extension = benchmark(distributed.materialize)
    assert eurostat.global_dtd().validate(extension)
    # One nationalIndex block per good and country, plus the averages block.
    assert extension.child_str().count("nationalIndex") == countries * len(eurostat.DEFAULT_GOODS)


def test_distribution_accounting(benchmark, table):
    rows = []
    for countries in COUNTRY_COUNTS:
        distributed = build(countries)
        extension = distributed.materialize()
        rows.append(
            [
                countries,
                extension.size,
                distributed.network.message_count,
                distributed.network.bytes_shipped,
            ]
        )
    table(
        "Figure 1/2 (materialising the NCPI document)",
        ["countries", "document nodes", "messages", "bytes shipped"],
        rows,
    )
    # Cost grows linearly with the number of countries.
    assert rows[-1][2] == 2 * (COUNTRY_COUNTS[-1] + 1)
    assert rows[-1][3] > rows[0][3]
    benchmark(build(COUNTRY_COUNTS[-1]).materialize)
