"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for the paper-vs-measured
comparison).  Benchmarks assert the *shape* the paper reports (who is cheap,
what blows up, how many typings exist) and time the actual decision
procedures with pytest-benchmark.
"""

from __future__ import annotations

import pytest


def report_rows(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a small aligned table; shown with ``pytest -s`` and kept in reports."""
    widths = [max(len(str(cell)) for cell in [header] + [row[i] for row in rows]) for i, header in enumerate(headers)]
    print(f"\n== {title} ==")
    print("  " + "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)))
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture
def table() -> object:
    """Fixture exposing :func:`report_rows` to benchmark tests."""
    return report_rows
