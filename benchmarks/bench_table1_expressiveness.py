"""Table 1 -- expressiveness of the schema abstractions (DTD ⊂ SDTD ⊂ EDTD, dRE ⊂ nRE).

The paper's Table 1 maps each practical schema language to its abstraction.
The benchmark regenerates the separations behind the table: witness
languages that are EDTD- but not SDTD-definable, SDTD- but not DTD-definable,
and DTD-definable but not with deterministic (dRE) content models -- and
times the decision procedures (the closures of Section 3) that establish
them.
"""

from __future__ import annotations

from repro.automata.determinism import is_one_unambiguous
from repro.schemas.closures import dtd_closure, single_type_closure
from repro.schemas.compare import schema_equivalent, schema_includes
from repro.schemas.dtd import DTD
from repro.schemas.edtd import EDTD
from repro.schemas.sdtd import SDTD


def edtd_not_sdtd() -> EDTD:
    """Sibling a-nodes with different contents: regular but not single-type."""
    return EDTD(
        "s0",
        {"s0": "a1, a2", "a1": "b", "a2": "c"},
        mu={"a1": "a", "a2": "a"},
    )


def sdtd_not_dtd() -> SDTD:
    """Ancestor-dependent contents: single-type but not local (not a DTD)."""
    return SDTD(
        "store",
        {
            "store": "dvd1*, promo1?",
            "promo1": "dvd2*",
            "dvd1": "title, price",
            "dvd2": "title",
        },
        mu={"dvd1": "dvd", "dvd2": "dvd", "promo1": "promo"},
    )


def dtd_not_dre() -> DTD:
    """A DTD whose content model language is not one-unambiguous."""
    return DTD("doc", {"doc": "(a | b)*, a, (a | b)"})


def test_edtd_strictly_more_expressive_than_sdtd(benchmark, table):
    target = edtd_not_sdtd()

    def check() -> bool:
        closure = single_type_closure(target)
        return schema_includes(target, closure) and schema_equivalent(closure, target)

    definable = benchmark(check)
    assert not definable
    table(
        "Table 1 (rows Relax NG vs XSD)",
        ["witness language", "SDTD-definable"],
        [["s0(a(b) a(c))-style positional constraints", definable]],
    )


def test_sdtd_strictly_more_expressive_than_dtd(benchmark, table):
    target = sdtd_not_dtd()

    def check() -> bool:
        closure = dtd_closure(target)
        return schema_equivalent(closure, target)

    definable = benchmark(check)
    assert not definable
    # ... while the language is by construction SDTD-definable.
    assert schema_equivalent(single_type_closure(target), target)
    table(
        "Table 1 (rows XSD vs DTD)",
        ["witness language", "DTD-definable", "SDTD-definable"],
        [["dvd content depends on the promo ancestor", definable, True]],
    )


def test_dre_content_models_are_weaker_than_nre(benchmark, table):
    target = dtd_not_dre()
    model = target.content("doc").nfa
    one_unambiguous = benchmark(is_one_unambiguous, model)
    assert not one_unambiguous
    table(
        "Table 1 (row W3C DTD: dRE vs nRE content models)",
        ["content model", "one-unambiguous (dRE expressible)"],
        [["(a|b)* a (a|b)", one_unambiguous]],
    )
