"""The sharded distributed-validation runtime vs the serial simulation.

The paper's Section 1 motivation at system scale: once local types are
propagated, each peer validates its own publications and only
acknowledgements travel.  This benchmark drives the runtime introduced on
top of that story -- thread-pool execution over shards, wire-level
content-addressed ingest, incremental revalidation -- against the serial
baseline that parses and revalidates everything every round.

``run_all.py`` records the same scenarios into ``BENCH_core.json`` (the
machine-readable trajectory); this module is the pytest-benchmark view.
"""

from __future__ import annotations

import pytest

from repro.distributed.network import DistributedDocument
from repro.distributed.runtime import ValidationRuntime, WorkloadDriver
from repro.trees.xml_io import tree_from_xml, tree_to_xml
from repro.workloads.synthetic import corrupt_document, distributed_workload

PEER_COUNTS = (2, 8)
WORKLOAD_DOCUMENTS = 40


def build(peers: int, seed: int = 0):
    return distributed_workload(peers=peers, documents=WORKLOAD_DOCUMENTS, seed=seed, invalid_rate=0.05)


@pytest.mark.parametrize("peers", PEER_COUNTS)
def test_serial_full_round(benchmark, peers):
    """Baseline: every peer revalidates (fresh objects defeat the identity memo)."""
    workload = build(peers)
    document = DistributedDocument(workload.kernel, dict(workload.initial_documents))
    document.propagate_typing(workload.typing)
    payloads = {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()}

    def round_trip():
        for function, payload in payloads.items():
            document.update_resource(function, tree_from_xml(payload))
        return document.validate_locally()

    report = benchmark(round_trip)
    assert report.valid


@pytest.mark.parametrize("peers", PEER_COUNTS)
def test_runtime_republish_round(benchmark, peers):
    """The runtime's round over byte-identical re-publications: hashes only."""
    workload = build(peers)
    document = DistributedDocument(workload.kernel, dict(workload.initial_documents))
    with ValidationRuntime(document, max_workers=4) as runtime:
        runtime.propagate_typing(workload.typing)
        payloads = {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()}

        def round_trip():
            for function, payload in payloads.items():
                runtime.publish(function, payload)
            return runtime.validate_locally()

        round_trip()  # first sight of the wire payloads: validates everything
        report = benchmark(round_trip)
        assert report.valid and report.peers_validated == 0


def test_runtime_single_edit_round(benchmark):
    """Edit one peer, revalidate: exactly one validator re-runs."""
    workload = build(8)
    document = DistributedDocument(workload.kernel, dict(workload.initial_documents))
    with ValidationRuntime(document, max_workers=4) as runtime:
        runtime.validate_locally(workload.typing)
        good = tree_to_xml(workload.initial_documents["f3"])
        bad = tree_to_xml(corrupt_document(workload.initial_documents["f3"]))
        state = {"flip": False}

        def edit_round():
            state["flip"] = not state["flip"]
            runtime.publish("f3", bad if state["flip"] else good)
            return runtime.validate_locally()

        report = benchmark(edit_round)
        assert report.peers_validated == 1


def test_workload_replay_comparison(benchmark, table):
    """The full driver replay: serial vs runtime vs centralized ledgers."""
    workload = build(8)
    report = WorkloadDriver(workload, max_workers=4).run(("serial", "runtime", "centralized"))
    assert report.verdicts_agree
    serial, runtime = report.outcome("serial"), report.outcome("runtime")
    assert runtime.documents_validated < serial.documents_validated
    assert runtime.bytes_shipped < serial.bytes_shipped
    rows = [
        [
            outcome.strategy,
            f"{outcome.wall_seconds * 1000:.2f}",
            outcome.documents_validated,
            f"{outcome.throughput:.0f}",
            outcome.messages,
            outcome.bytes_shipped,
        ]
        for outcome in report.outcomes
    ]
    table(
        "Distributed workload replay (8 peers)",
        ["strategy", "wall ms", "validated", "docs/s", "messages", "bytes"],
        rows,
    )
    benchmark(lambda: WorkloadDriver(workload, max_workers=4).run(("runtime",)))


def test_scaled_workload_smoke(benchmark):
    """Hundreds of peers: the runtime holds up at scale (smoke-sized here)."""
    workload = distributed_workload(peers=100, documents=160, seed=4, invalid_rate=0.02)
    driver = WorkloadDriver(workload, max_workers=8)
    report = driver.run(("runtime",))
    outcome = report.outcome("runtime")
    assert outcome.rounds == 61
    assert outcome.documents_validated <= 160
    benchmark(lambda: WorkloadDriver(workload, max_workers=8).run(("runtime",)))
