"""Table 2 -- worst-case size of ``typeT(τn)`` under the four content-model formalisms.

The table reports ``Θ(m)`` for nondeterministic formalisms and ``Θ(2^m)``
for the deterministic ones (dFA / dRE) on DTDs and SDTDs.  The benchmark
builds the classical blow-up family (the content model "the k-th letter from
the end is an a") through a two-resource bottom-up design and measures the
resulting type under both measures.
"""

from __future__ import annotations

import pytest

from repro.core.consistency import check_consistency, schema_size_under
from repro.schemas.content_model import Formalism
from repro.workloads import synthetic

KS = (3, 5, 7)


@pytest.mark.parametrize("k", KS)
def test_type_construction_for_blowup_family(benchmark, k):
    design = synthetic.dfa_blowup_design(k)
    result = benchmark(check_consistency, design.kernel, design.typing, "DTD")
    assert result.consistent


def test_deterministic_blowup_shape(benchmark, table):
    """nFA sizes grow linearly with k; dFA sizes roughly double with each k."""
    rows = []
    nfa_sizes = []
    dfa_sizes = []
    for k in KS:
        design = synthetic.dfa_blowup_design(k)
        result = check_consistency(design.kernel, design.typing, "DTD")
        nfa_size = schema_size_under(result.result_type, Formalism.NFA)
        dfa_size = schema_size_under(result.result_type, Formalism.DFA)
        nfa_sizes.append(nfa_size)
        dfa_sizes.append(dfa_size)
        rows.append([k, nfa_size, dfa_size])
    table("Table 2 (|typeT(τn)|: nFA vs dFA)", ["k", "nFA size", "dFA size"], rows)
    # Linear vs exponential shape.
    assert nfa_sizes[-1] < 4 * nfa_sizes[0]
    assert dfa_sizes[-1] > 8 * dfa_sizes[0]
    # For small k the measures are comparable; for the largest k the dFA dominates.
    assert dfa_sizes[-1] > nfa_sizes[-1]
    design = synthetic.dfa_blowup_design(KS[-1])
    benchmark(check_consistency, design.kernel, design.typing, "DTD")


@pytest.mark.parametrize("k", KS)
def test_size_measurement_under_dfa(benchmark, k):
    design = synthetic.dfa_blowup_design(k)
    result = check_consistency(design.kernel, design.typing, "DTD")
    size = benchmark(schema_size_under, result.result_type, Formalism.DFA)
    assert size >= 2 ** (k - 1)
