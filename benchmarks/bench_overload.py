"""Goodput under deliberate overload: the shedding tier earns its keep.

The scenario: measure the server's unloaded closed-loop capacity, then
drive it open-loop at a multiple of that rate (2--10x) through retrying
clients against a deliberately small admission queue.  The server sheds
with typed ``overloaded``/``retry-after`` answers; clients back off and
re-land; content-addressed dedup makes the re-publications idempotent.
The number that matters is **goodput** -- successful publications per
second -- which must stay a healthy fraction of the unloaded capacity
instead of collapsing (the signature of congestion without admission
control).

CI smoke entry point::

    PYTHONPATH=src python benchmarks/bench_overload.py --smoke

which runs the 4x scenario on a CI-sized workload and fails unless
goodput >= 60% of the unloaded throughput with zero lost publications
and no leaked threads.
"""

from __future__ import annotations

import argparse
import json
import threading

from repro.service.client import RetryPolicy
from repro.service.loadgen import run_load
from repro.service.server import ServiceHandle, ValidationServer
from repro.workloads.synthetic import distributed_workload

SMOKE_GOODPUT_FLOOR = 0.6


def repro_threads() -> list[str]:
    return [t.name for t in threading.enumerate() if t.name.startswith("repro-")]


def measure_overload(
    peers: int = 8,
    documents: int = 80,
    overload_factor: float = 4.0,
    max_queue_depth: int = 128,
    clients: int = 4,
    retry_attempts: int = 10,
    retry_seed: int = 0,
) -> dict:
    """Baseline capacity, then offered load at ``overload_factor`` times it.

    Returns a JSON-ready dict: the unloaded closed-loop throughput, the
    overloaded run's goodput/p99/shed/retries, and their ratio.
    """
    workload = distributed_workload(
        peers=peers, documents=documents, seed=0, invalid_rate=0.0
    )
    server = ValidationServer(max_queue_depth=max_queue_depth)
    with ServiceHandle(server).start() as handle:
        # Unloaded capacity: a closed-loop replay with no retry pressure.
        # (The first replay also registers the design and warms the caches.)
        run_load(handle.host, handle.port, workload, design="bench",
                 clients=clients, pipeline=8)
        baseline = run_load(
            handle.host, handle.port, workload, design="bench",
            clients=clients, pipeline=8, register=False,
        )
        assert baseline.errors == 0, "the unloaded baseline must be error-free"

        offered = overload_factor * baseline.throughput
        # Tight backoff: the server's retry-after hint (EWMA queue-drain
        # time) is the real pacing signal; the client floor just adds jitter.
        policy = RetryPolicy(attempts=retry_attempts, base_delay=0.002,
                             max_delay=0.05, seed=retry_seed)
        overloaded = run_load(
            handle.host, handle.port, workload, design="bench",
            mode="open", rate=offered, clients=clients, register=False,
            retry=policy,
        )
    ratio = overloaded.goodput / baseline.throughput if baseline.throughput else 0.0
    return {
        "peers": peers,
        "documents": documents,
        "overload_factor": overload_factor,
        "max_queue_depth": max_queue_depth,
        "baseline_throughput_per_s": round(baseline.throughput, 1),
        "offered_rate_per_s": round(offered, 1),
        "goodput_per_s": round(overloaded.goodput, 1),
        "goodput_ratio": round(ratio, 3),
        "p99_ms": round(overloaded.p99_ms, 4),
        "publications": overloaded.publications,
        "errors": overloaded.errors,
        "shed": overloaded.shed,
        "retries": overloaded.retries,
        "final_valid": overloaded.final_valid,
    }


def smoke(attempts: int = 3) -> dict:
    """The CI gate: 4x overload, goodput >= 60% of unloaded throughput.

    Zero lost publications is a hard invariant on every attempt.  The
    goodput ratio is a wall-clock measurement on a shared runner, so the
    gate takes the best of ``attempts`` runs: a scheduler hiccup in one
    run must not fail the build, a genuine goodput collapse fails all
    three.
    """
    best: dict = {}
    for attempt in range(attempts):
        summary = measure_overload(peers=8, documents=80, overload_factor=4.0)
        assert summary["errors"] == 0, (
            f"retrying clients lost {summary['errors']} publications under overload"
        )
        leaked = repro_threads()
        assert leaked == [], f"service threads leaked: {leaked}"
        if not best or summary["goodput_ratio"] > best["goodput_ratio"]:
            best = summary
        if best["goodput_ratio"] >= SMOKE_GOODPUT_FLOOR:
            break
        print(
            f"attempt {attempt + 1}/{attempts}: goodput ratio "
            f"{summary['goodput_ratio']:.0%} below the {SMOKE_GOODPUT_FLOOR:.0%} floor"
        )
    assert best["goodput_ratio"] >= SMOKE_GOODPUT_FLOOR, (
        f"goodput collapsed under 4x overload: best of {attempts} runs is "
        f"{best['goodput_per_s']}/s, {best['goodput_ratio']:.0%} of the unloaded "
        f"{best['baseline_throughput_per_s']}/s (floor {SMOKE_GOODPUT_FLOOR:.0%})"
    )
    best["leaked_threads"] = []
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="run the CI overload gate")
    parser.add_argument("--factor", type=float, default=4.0,
                        help="offered load as a multiple of unloaded capacity")
    parser.add_argument("--peers", type=int, default=8)
    parser.add_argument("--documents", type=int, default=80)
    parser.add_argument("--max-queue-depth", type=int, default=128)
    args = parser.parse_args(argv)
    if args.smoke:
        summary = smoke()
        print(json.dumps(summary, indent=2, sort_keys=True))
        print(
            f"\noverload smoke OK: goodput {summary['goodput_per_s']}/s at "
            f"{summary['overload_factor']}x offered load "
            f"({summary['goodput_ratio']:.0%} of unloaded), "
            f"{summary['shed']} shed, {summary['retries']} retries, no losses"
        )
        return 0
    summary = measure_overload(
        peers=args.peers, documents=args.documents,
        overload_factor=args.factor, max_queue_depth=args.max_queue_depth,
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
