#!/usr/bin/env python
"""Machine-readable core-benchmark runner: ``BENCH_core.json`` across PRs.

Runs the table2 / table3 / fig7 scenarios (the same decision procedures the
pytest-benchmark modules time) with a plain ``perf_counter`` harness and
writes one JSON file mapping scenario name to mean milliseconds, problem
sizes, and the git SHA, so the performance trajectory of the repository is
diffable across PRs::

    PYTHONPATH=src python benchmarks/run_all.py                # full run
    PYTHONPATH=src python benchmarks/run_all.py --smoke        # CI-sized run
    PYTHONPATH=src python benchmarks/run_all.py --smoke \\
        --check benchmarks/BENCH_baseline.json --max-regression 3.0

``--check`` compares against a committed baseline and exits non-zero when
any scenario regressed by more than ``--max-regression`` (default 3×); new
or removed scenarios are reported but never fail the check.

Each scenario is timed twice: ``cold`` (fresh compilation engine every
round -- the end-to-end cost of a first analysis) and ``warm`` (one shared
engine -- the steady-state cost the serving layers see).  Means are over
``--rounds`` rounds after one untimed warm-up round for the warm case.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except Exception:  # pragma: no cover - git may be absent in CI images
        return "unknown"


# --------------------------------------------------------------------------- #
# scenarios
# --------------------------------------------------------------------------- #


def _scenario_table2_cons(language: str, n: int):
    """cons[S] on the bottom-up chain family (Table 2)."""
    from repro.core.consistency import check_consistency
    from repro.workloads import synthetic

    design = synthetic.bottom_up_chain(n)
    sizes = {"resources": n, "kernel": design.kernel.size, "typing": design.typing.size}

    def run():
        result = check_consistency(design.kernel, design.typing, language)
        assert result.consistent

    return run, sizes


def _scenario_table3_perfect(k: int):
    """∃-perf on the separable top-down family (Table 3 row E)."""
    from repro.core.existence import find_perfect_typing
    from repro.workloads import synthetic

    design = synthetic.separable_topdown_design(k)
    sizes = {"k": k}

    def run():
        assert find_perfect_typing(design) is not None

    return run, sizes


def _scenario_table3_local(k: int):
    """∃-loc on the interleaved word family (Table 3 row D)."""
    from repro.core.existence import find_local_typing
    from repro.workloads import synthetic

    design = synthetic.word_topdown_design(k)
    sizes = {"k": k}

    def run():
        assert find_local_typing(design) is not None

    return run, sizes


def _scenario_fig7_build(k: int, functions: int):
    """Perfect-automaton construction Ω(A, w) (Figure 7 / Algorithm 1)."""
    from repro.automata.regex import regex_to_nfa
    from repro.core.perfect import PerfectAutomaton
    from repro.core.words import KernelString

    symbols = ", ".join(f"x{i}" for i in range(1, k + 1))
    target = regex_to_nfa(f"({symbols})+", names=True)
    kernel = KernelString(
        [()] * (functions + 1), [f"f{i}" for i in range(1, functions + 1)]
    )
    sizes = {"target_states": k, "functions": functions}

    def run():
        perfect = PerfectAutomaton(target, kernel)
        assert perfect.compatible
        perfect.omega_nfa()

    return run, sizes


def _publication_pairs(peers: int, documents: int):
    """The driver's publication stream as ``(function, payload-bytes)`` pairs."""
    from repro.service.loadgen import publication_stream
    from repro.workloads import synthetic

    workload = synthetic.distributed_workload(
        peers=peers, documents=documents, seed=0, invalid_rate=0.05
    )
    return workload, [(f, p.encode("utf-8")) for f, p in publication_stream(workload)]


def _scenario_local_validation(peers: int, documents: int, backend: str = "python"):
    """The tree-based per-publication path: parse to Tree, validate bottom-up.

    The PR 1 "local validation" baseline at wire granularity -- every
    payload arrives as bytes and is parsed before the compiled-schema run
    loop sees it.  The ``peak_kib`` extra records the tree path's peak
    allocation on the stream's largest document (what streaming avoids).
    ``backend`` selects the validation backend (the ``_codegen`` variants
    time the generated validators against this interpreted oracle).
    """
    import tracemalloc

    from repro.engine import BatchValidator
    from repro.trees.xml_io import tree_from_xml

    workload, pairs = _publication_pairs(peers, documents)
    validators = {
        f: BatchValidator(workload.typing[f], backend=backend)
        for f in workload.initial_documents
    }
    sizes = {"peers": peers, "documents": documents, "publications": len(pairs)}
    _function, largest = max(pairs, key=lambda item: len(item[1]))
    tracemalloc.start()
    tree_from_xml(largest)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    extras = {"peak_kib": round(peak / 1024, 1)}

    def run():
        for function, payload in pairs:
            validators[function].validate(tree_from_xml(payload))
        return extras

    return run, sizes


def _scenario_streaming_validate(peers: int, documents: int, backend: str = "python"):
    """Event-driven validation of the same stream: wire bytes to verdict.

    Extras record the subsystem's memory story next to its wall-clock:
    peak allocation on the largest document (chunk-fed) and the stream's
    maximum document depth -- the O(depth) bound's two witnesses.  On the
    ``codegen`` backend the whole-payload path runs the generated
    per-schema fold instead of the interpreted frame machine (the
    ``speedup_vs_python`` key is derived in :func:`main`).
    """
    import tracemalloc

    from repro.streaming import StreamingValidator, XMLEventSource

    workload, pairs = _publication_pairs(peers, documents)
    machines = {
        f: StreamingValidator(workload.typing[f], backend=backend)
        for f in workload.initial_documents
    }
    sizes = {"peers": peers, "documents": documents, "publications": len(pairs)}
    function, largest = max(pairs, key=lambda item: len(item[1]))
    max_depth = 0
    for probe_function, payload in pairs[: len(workload.initial_documents)]:
        run_probe = machines[probe_function].run()
        source = XMLEventSource()
        source.pump(payload, run_probe)
        run_probe.consume(source.close())
        max_depth = max(max_depth, run_probe.max_depth)
    tracemalloc.start()
    machines[function].validate_payload(largest, chunk_bytes=8192)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    extras = {"peak_kib": round(peak / 1024, 1), "max_doc_depth": max_depth}

    def run():
        for pair_function, payload in pairs:
            machines[pair_function].validate_payload(payload)
        return extras

    return run, sizes


#: Teardown callbacks registered by scenarios that hold live resources
#: (service handles, client sockets); run once after all timing is done.
_CLEANUPS: list = []


def _close_scenarios() -> None:
    while _CLEANUPS:
        _CLEANUPS.pop()()


#: Shared state of the two publish-latency scenarios (one server boot).
_PUBLISH_STATE: dict = {}


def _service_publish_state():
    """One server + client + pre-published payloads, shared by p50/p99."""
    if not _PUBLISH_STATE:
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceHandle, ValidationServer
        from repro.trees.xml_io import tree_to_xml
        from repro.workloads import synthetic

        workload = synthetic.distributed_workload(peers=8, documents=8, seed=0)
        handle = ServiceHandle(ValidationServer()).start()
        _CLEANUPS.append(handle.close)
        client = ServiceClient(handle.host, handle.port)
        _CLEANUPS.append(client.close)
        payloads = {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()}
        client.register_design(
            "bench", str(workload.kernel.tree), dict(workload.typing.items()), payloads
        )
        for function, payload in payloads.items():
            client.publish("bench", function, payload)  # first sight: validates
        _PUBLISH_STATE.update(client=client, payloads=payloads)
        _CLEANUPS.append(_PUBLISH_STATE.clear)
    return _PUBLISH_STATE["client"], _PUBLISH_STATE["payloads"]


def _scenario_service_publish(quantile: str):
    """Per-publish round-trip latency percentile over a live loopback service.

    A blocking client re-publishes byte-identical payloads (the steady
    state: fingerprint fast path, no validation rounds), so the number is
    the floor of the service stack -- framing, asyncio scheduling,
    admission batching, one sha256.  The scenario's extra key
    ``p50_ms``/``p99_ms`` carries the percentile; ``mean_ms`` stays the
    harness wall-clock of a whole round of publishes.  Both percentile
    scenarios drive the same server, booted here at build time so no
    timed round (in particular no "cold" round) absorbs the boot.
    """
    from repro.metrics import Histogram

    client, payloads = _service_publish_state()
    fraction = {"p50": 0.50, "p99": 0.99}[quantile]
    repeats = 4
    sizes = {"peers": 8, "publications_per_round": repeats * len(payloads)}

    def run():
        histogram = Histogram()
        for _ in range(repeats):
            for function, payload in payloads.items():
                started = time.perf_counter()
                result = client.publish("bench", function, payload)
                histogram.record(1000 * (time.perf_counter() - started))
                assert result["clean"]
        return {f"{quantile}_ms": round(histogram.percentile(fraction), 4)}

    return run, sizes


def _scenario_service_throughput(peers: int, documents: int):
    """Closed-loop service throughput: the headline publications/second.

    The extra ``throughput_per_s`` key is the acceptance number (>= 1k/s
    on loopback for the 8-peer record workload).
    """
    from repro.service.loadgen import run_load
    from repro.service.server import ServiceHandle, ValidationServer
    from repro.workloads import synthetic

    workload = synthetic.distributed_workload(
        peers=peers, documents=documents, seed=0, invalid_rate=0.05
    )
    handle = ServiceHandle(ValidationServer()).start()
    _CLEANUPS.append(handle.close)
    # Register at build time (one untimed warm-up replay), so neither the
    # cold nor the warm rounds pay the boot/registration cost.
    run_load(handle.host, handle.port, workload, design="bench", clients=4, pipeline=8)
    rounds = documents - peers + 1
    sizes = {"peers": peers, "documents": documents, "publications": rounds * peers, "clients": 4}

    def run():
        report = run_load(
            handle.host,
            handle.port,
            workload,
            design="bench",
            clients=4,
            pipeline=8,
            register=False,
        )
        assert report.errors == 0
        return {
            "throughput_per_s": round(report.throughput, 1),
            "p50_ms": round(report.p50_ms, 4),
            "p99_ms": round(report.p99_ms, 4),
            "publications": report.publications,
        }

    return run, sizes


def _scenario_observability_overhead(peers: int, documents: int):
    """The cost of full observability on the closed-loop throughput headline.

    One server carrying the full observability stack -- labeled metric
    families, the ``/metrics`` exporter, an enabled trace ring, the
    structured log ring, the sampling profiler -- driven with the same
    workload twice per measurement: once fully observed (every
    publication mints and propagates a fresh trace id, the log ring
    records every op, the profiler samples at 50 hz), once dormant (no
    ids, logging disabled, profiler stopped, so every record
    short-circuits and the exporter sits idle).  Using *one* server
    instance is the
    point: two separately-booted servers differ by up to ~10% from
    thread placement and allocator state alone, which drowns the few
    percent being measured.  Each round runs several back-to-back ABBA
    cycles (off/on/on/off, direction alternating) so drive-order bias
    cancels and load drift covers both sides equally.

    The gated number, ``observability_overhead_pct``, is the ratio of
    *lower-quartile per-drive process-CPU* (traced vs dormant), pooled
    across every drive of the whole bench run.  Wall-clock throughput
    ratios on this workload are bimodal at +-10% -- scheduler/core-
    placement states persist across whole 50 ms drives -- and no
    feasible number of drives stabilizes their median, while CPU noise
    is one-sided (interference and batching under-amortization only add
    cycles), so the low quartile converges on the true per-publication
    cost; an A/A run of the same harness reads ~0%.  Throughput medians
    are still reported alongside for the headline.  The CI bench job
    gates the overhead at <= 5%.
    """
    import gc

    from repro.service.loadgen import run_load
    from repro.service.server import ServiceHandle, ValidationServer
    from repro.workloads import synthetic

    workload = synthetic.distributed_workload(
        peers=peers, documents=documents, seed=0, invalid_rate=0.05
    )
    handle = ServiceHandle(ValidationServer(metrics_port=0)).start()
    _CLEANUPS.append(handle.close)
    run_load(handle.host, handle.port, workload, design="bench", clients=4, pipeline=8)
    plain_cpu: list[float] = []
    observed_cpu: list[float] = []
    plain_tps: list[float] = []
    observed_tps: list[float] = []
    rounds = documents - peers + 1
    sizes = {"peers": peers, "documents": documents, "publications": rounds * peers, "clients": 4}

    def drive(observe):
        # The whole stack toggles together: trace ids on the wire, the
        # structured log ring, and the 50 hz sampling profiler are one
        # "observed" posture (the CI gate covers their combined cost).
        server = handle.server
        if observe:
            server.logger.enabled = True
            server.profiler.start(hz=50, reset=False)
        else:
            server.profiler.stop()
            server.logger.enabled = False
        # Collect *between* drives so a full collection's pause never
        # lands inside one side of a pair (the peers' network logs keep
        # the heap growing across drives).
        gc.collect()
        start = time.process_time()
        report = run_load(
            handle.host, handle.port, workload, design="bench",
            clients=4, pipeline=8, register=False, trace=observe,
        )
        cpu = time.process_time() - start
        assert report.errors == 0
        return cpu, report.throughput

    def lower_quartile(values):
        return statistics.quantiles(values, n=4)[0] if len(values) > 1 else values[0]

    def run():
        observed = 0.0
        for cycle in range(3):
            # The cycle direction alternates (ABBA then BAAB) so any
            # position-in-cycle effect lands on each side equally often.
            if cycle % 2 == 0:
                off_a = drive(observe=False)
                on_a = drive(observe=True)
                on_b = drive(observe=True)
                off_b = drive(observe=False)
            else:
                on_a = drive(observe=True)
                off_a = drive(observe=False)
                off_b = drive(observe=False)
                on_b = drive(observe=True)
            plain_cpu.extend((off_a[0], off_b[0]))
            observed_cpu.extend((on_a[0], on_b[0]))
            plain_tps.extend((off_a[1], off_b[1]))
            observed_tps.extend((on_a[1], on_b[1]))
            observed = on_b[1]
        ratio = lower_quartile(observed_cpu) / max(lower_quartile(plain_cpu), 1e-9)
        overhead = max(0.0, (ratio - 1.0) * 100.0)
        return {
            "throughput_per_s": round(observed, 1),
            "plain_throughput_per_s": round(statistics.median(plain_tps), 1),
            "observed_throughput_per_s": round(statistics.median(observed_tps), 1),
            "plain_cpu_s_per_drive": round(lower_quartile(plain_cpu), 5),
            "observed_cpu_s_per_drive": round(lower_quartile(observed_cpu), 5),
            "observability_overhead_pct": round(overhead, 2),
        }

    return run, sizes


def _scenario_service_overload(factor: float, peers: int, documents: int):
    """Goodput under deliberate overload: offered load at ``factor`` times
    the unloaded closed-loop capacity, retrying clients against a bounded
    admission queue.

    The extras are the overload-survival headline: ``goodput_per_s`` (and
    its ratio to the unloaded throughput -- the number the chaos CI job
    gates at >= 0.6), tail latency under shedding, and how many
    publications were shed and retried.  Zero ``errors`` means every
    publication eventually landed exactly once (content-addressed dedup
    absorbs the re-publications).
    """
    from repro.service.client import RetryPolicy
    from repro.service.loadgen import run_load
    from repro.service.server import ServiceHandle, ValidationServer
    from repro.workloads import synthetic

    workload = synthetic.distributed_workload(
        peers=peers, documents=documents, seed=0, invalid_rate=0.0
    )
    handle = ServiceHandle(ValidationServer(max_queue_depth=128)).start()
    _CLEANUPS.append(handle.close)
    run_load(handle.host, handle.port, workload, design="bench", clients=4, pipeline=8)
    baseline = run_load(
        handle.host, handle.port, workload, design="bench", clients=4, pipeline=8,
        register=False,
    )
    offered = factor * baseline.throughput
    policy = RetryPolicy(attempts=10, base_delay=0.002, max_delay=0.05, seed=0)
    rounds = documents - peers + 1
    sizes = {
        "peers": peers,
        "documents": documents,
        "publications": rounds * peers,
        "max_queue_depth": 128,
        "overload_factor": factor,
    }

    def run():
        report = run_load(
            handle.host, handle.port, workload, design="bench",
            mode="open", rate=offered, clients=4, register=False, retry=policy,
        )
        assert report.errors == 0
        return {
            "goodput_per_s": round(report.goodput, 1),
            "goodput_ratio": round(report.goodput / max(baseline.throughput, 1e-6), 3),
            "offered_rate": round(offered, 1),
            "p99_ms": round(report.p99_ms, 4),
            "shed": report.shed,
            "retries": report.retries,
        }

    return run, sizes


def _scenario_federation_publish(pods: int, peers: int, documents: int):
    """Steady-state publish round-trips through a directory + pod federation.

    A thread-spawn federation (in-process servers on real loopback
    sockets) is booted at build time; each timed round re-publishes
    byte-identical payloads through the owning pods and reads the
    directory's global verdict.  Relative to ``service_publish_*`` this
    adds the orchestrator's routing, the pod's ``peer_verdict`` push
    (inside the publish round-trip, by design) and one directory
    ``global_verdict`` read per round.  The extra ``p50_ms`` is the
    per-publish latency percentile.
    """
    from repro.federation import Federation
    from repro.metrics import Histogram
    from repro.trees.xml_io import tree_to_xml
    from repro.workloads import synthetic

    workload = synthetic.distributed_workload(
        peers=peers, documents=documents, seed=0, invalid_rate=0.05,
        records=5, fields=3,
    )
    federation = Federation(
        workload.kernel, workload.typing, workload.initial_documents,
        pods=pods, spawn="thread", workers=2,
    )
    _CLEANUPS.append(lambda: federation.close())
    payloads = {f: tree_to_xml(doc) for f, doc in workload.initial_documents.items()}
    for function, payload in payloads.items():
        federation.publish(function, payload)  # first sight: validates
    repeats = 4
    sizes = {"pods": pods, "peers": peers, "publications_per_round": repeats * len(payloads)}

    def run():
        histogram = Histogram()
        for _ in range(repeats):
            for function, payload in payloads.items():
                started = time.perf_counter()
                result = federation.publish(function, payload)
                histogram.record(1000 * (time.perf_counter() - started))
                assert result["clean"]
        verdict = federation.global_verdict()
        assert verdict["complete"]
        return {
            "p50_ms": round(histogram.percentile(0.50), 4),
            "global_verdict": verdict["valid"],
        }

    return run, sizes


def _scenario_distributed_workload(strategy: str, peers: int, documents: int):
    """One full workload replay through the distributed runtime's driver.

    ``serial`` parses and revalidates every publication; ``runtime`` is the
    sharded thread-pool runtime with content-addressed incremental ingest.
    The recorded ratio between the two is the headline of PR 3 (the
    ``speedup_vs_serial`` key is derived in :func:`main`).
    """
    from repro.distributed.runtime import WorkloadDriver
    from repro.workloads import synthetic

    workload = synthetic.distributed_workload(
        peers=peers, documents=documents, seed=0, invalid_rate=0.05
    )
    driver = WorkloadDriver(workload, max_workers=4)
    sizes = {"peers": peers, "documents": documents, "workers": 4}

    def run():
        report = driver.run((strategy,))
        assert report.outcome(strategy).rounds == documents - peers + 1

    return run, sizes


def _scenarios(smoke: bool):
    cons_sizes = (2, 8) if smoke else (2, 4, 8)
    for language in ("EDTD", "SDTD", "DTD"):
        for n in cons_sizes:
            yield f"table2_cons_{language.lower()}_{n}", _scenario_table2_cons(language, n)
    for k in ((2,) if smoke else (2, 3, 4)):
        yield f"table3_exists_perfect_{k}", _scenario_table3_perfect(k)
    for k in ((2,) if smoke else (2, 3)):
        yield f"table3_exists_local_{k}", _scenario_table3_local(k)
    fig7_cases = ((8, 3),) if smoke else ((2, 1), (4, 2), (8, 3))
    for k, functions in fig7_cases:
        yield f"fig7_perfect_automaton_{k}_{functions}", _scenario_fig7_build(k, functions)
    documents = 24 if smoke else 40
    yield "local_validation_8", _scenario_local_validation(8, documents)
    yield "streaming_validate_8", _scenario_streaming_validate(8, documents)
    yield (
        "local_validation_8_codegen",
        _scenario_local_validation(8, documents, backend="codegen"),
    )
    yield (
        "streaming_validate_8_codegen",
        _scenario_streaming_validate(8, documents, backend="codegen"),
    )
    if not smoke:
        yield "streaming_validate_100", _scenario_streaming_validate(100, 110)
    for strategy in ("serial", "runtime"):
        yield (
            f"distributed_workload_{strategy}_8",
            _scenario_distributed_workload(strategy, 8, documents),
        )
    if not smoke:
        yield (
            "distributed_workload_runtime_100",
            _scenario_distributed_workload("runtime", 100, 200),
        )
    for quantile in ("p50", "p99"):
        yield f"service_publish_{quantile}", _scenario_service_publish(quantile)
    yield "service_throughput_8", _scenario_service_throughput(8, documents)
    yield "service_throughput_8_observed", _scenario_observability_overhead(8, documents)
    if not smoke:
        yield "service_throughput_100", _scenario_service_throughput(100, 110)
    yield "service_overload_4x", _scenario_service_overload(4.0, 8, 40 if smoke else 80)
    yield "federation_publish_2pods", _scenario_federation_publish(2, 4, 14)


# --------------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------------- #


def _time_rounds(run, rounds: int, fresh_engine: bool) -> tuple[list[float], object]:
    """Time ``rounds`` runs; also returns the last run's return value.

    Scenarios may return a dict of extra result keys (percentiles,
    throughput) that gets merged into their ``BENCH_core.json`` entry.
    """
    from repro.engine.compilation import reset_default_engine

    times = []
    last = None
    if not fresh_engine:
        reset_default_engine()
        last = run()  # warm-up: populate the engine caches
    for _ in range(rounds):
        if fresh_engine:
            reset_default_engine()
        start = time.perf_counter()
        last = run()
        times.append(time.perf_counter() - start)
    return times, last


def run_benchmarks(smoke: bool, rounds: int) -> dict:
    results = {}
    for name, (run, sizes) in _scenarios(smoke):
        cold, _ = _time_rounds(run, max(1, rounds // 3), fresh_engine=True)
        warm, extra = _time_rounds(run, rounds, fresh_engine=False)
        results[name] = {
            "mean_ms": round(1000 * statistics.mean(warm), 4),
            "min_ms": round(1000 * min(warm), 4),
            "cold_mean_ms": round(1000 * statistics.mean(cold), 4),
            "rounds": rounds,
            "sizes": sizes,
        }
        if isinstance(extra, dict):
            results[name].update(extra)
        print(
            f"{name:40s} warm {results[name]['mean_ms']:9.3f} ms   "
            f"cold {results[name]['cold_mean_ms']:9.3f} ms"
        )
    return results


def check_regressions(current: dict, baseline_path: Path, max_regression: float) -> int:
    """Fail when any scenario regressed by more than ``max_regression``.

    The baseline may come from a different machine (the committed one is
    recorded on a dev box, CI runs on shared runners), so raw wall-clock
    ratios conflate hardware speed with code regressions.  Ratios are
    therefore *normalized by the median ratio across all scenarios*: a
    uniformly slower machine shifts every ratio equally and normalizes
    away, while a genuine per-scenario regression stands out against the
    rest of the run.
    """
    baseline = json.loads(baseline_path.read_text())
    baseline_results = baseline.get("results", {})
    # Bound on how much the median ratio may normalize away.  Without it, a
    # change that slows *most* scenarios uniformly (e.g. a pessimization in
    # the shared kernel) would shift the median itself and pass unnoticed;
    # clamping means any across-the-board slowdown beyond this factor still
    # shows up as per-scenario regressions.
    max_machine_factor = 3.0
    ratios = {}
    for name, entry in current.items():
        reference = baseline_results.get(name)
        if reference is None:
            print(f"note: scenario {name} has no baseline entry (new scenario)")
            continue
        ratios[name] = (entry["mean_ms"] / max(reference["mean_ms"], 1e-6), reference["mean_ms"], entry["mean_ms"])
    for name in baseline_results:
        if name not in current:
            print(f"note: baseline scenario {name} was not run")
    if not ratios:
        print("no scenarios in common with the baseline; nothing to check")
        return 0
    machine_factor = statistics.median(ratio for ratio, _ref, _cur in ratios.values())
    machine_factor = min(max(machine_factor, 1.0 / max_machine_factor), max_machine_factor)
    print(f"machine factor (median ratio vs baseline, clamped to {max_machine_factor}x): {machine_factor:.2f}x")
    failures = []
    for name, (ratio, reference_ms, current_ms) in sorted(ratios.items()):
        normalized = ratio / max(machine_factor, 1e-6)
        status = "OK" if normalized <= max_regression else "REGRESSION"
        print(
            f"{name:40s} {reference_ms:9.3f} -> {current_ms:9.3f} ms  "
            f"({ratio:5.2f}x raw, {normalized:5.2f}x normalized)  {status}"
        )
        if normalized > max_regression:
            failures.append((name, normalized))
    if failures:
        print(f"\n{len(failures)} scenario(s) regressed by more than {max_regression}x (normalized):")
        for name, normalized in failures:
            print(f"  {name}: {normalized:.2f}x")
        return 1
    print(f"\nno scenario regressed by more than {max_regression}x (normalized)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized subset and fewer rounds")
    parser.add_argument("--rounds", type=int, default=None, help="timed rounds per scenario")
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_core.json"
    )
    parser.add_argument("--check", type=Path, default=None, help="baseline JSON to compare against")
    parser.add_argument("--max-regression", type=float, default=3.0)
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds is not None else (5 if args.smoke else 20)
    try:
        results = run_benchmarks(args.smoke, rounds)
    finally:
        _close_scenarios()
    serial = results.get("distributed_workload_serial_8")
    runtime = results.get("distributed_workload_runtime_8")
    if serial and runtime:
        speedup = round(serial["mean_ms"] / max(runtime["mean_ms"], 1e-6), 2)
        runtime["speedup_vs_serial"] = speedup
        print(f"\ndistributed runtime speedup vs serial (8 peers): {speedup}x")
    tree_path = results.get("local_validation_8")
    streaming = results.get("streaming_validate_8")
    if tree_path and streaming:
        speedup = round(tree_path["mean_ms"] / max(streaming["mean_ms"], 1e-6), 2)
        streaming["speedup_vs_tree"] = speedup
        print(f"streaming validation speedup vs tree path (8 peers): {speedup}x")
    for interpreted_name in ("streaming_validate_8", "local_validation_8"):
        interpreted = results.get(interpreted_name)
        generated = results.get(f"{interpreted_name}_codegen")
        if interpreted and generated:
            speedup = round(interpreted["mean_ms"] / max(generated["mean_ms"], 1e-6), 2)
            generated["speedup_vs_python"] = speedup
            print(
                f"codegen backend speedup vs python on {interpreted_name}: {speedup}x"
            )
    payload = {
        "git_sha": _git_sha(),
        "smoke": args.smoke,
        "rounds": rounds,
        "python": sys.version.split()[0],
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    if args.check is not None:
        return check_regressions(results, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
