"""Table 2 -- the consistency problem ``cons[S]`` for bottom-up designs.

The paper proves ``cons[R-EDTD]`` is decidable in constant time while
``cons[R-DTD]`` / ``cons[R-SDTD]`` are PSPACE-complete.  The benchmark runs
the actual decision procedures on designs with a growing number of resources
and checks the shape the table predicts: the EDTD check does not grow with
the design (it only builds ``T(τn)``, which is linear -- Proposition 3.1),
while the DTD/SDTD checks perform closure construction plus tree-language
equivalence and grow markedly faster.
"""

from __future__ import annotations

import time

import pytest

from repro.core.consistency import build_combined_type, check_consistency
from repro.workloads import synthetic

SIZES = (2, 4, 8)


@pytest.mark.parametrize("n", SIZES)
def test_cons_edtd_is_cheap(benchmark, n):
    design = synthetic.bottom_up_chain(n)
    result = benchmark(check_consistency, design.kernel, design.typing, "EDTD")
    assert result.consistent


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("language", ["DTD", "SDTD"])
def test_cons_dtd_and_sdtd(benchmark, language, n):
    design = synthetic.bottom_up_chain(n)
    result = benchmark(check_consistency, design.kernel, design.typing, language)
    assert result.consistent


@pytest.mark.parametrize("n", (2, 3, 4))
def test_cons_negative_instances(benchmark, n):
    design = synthetic.non_consistent_design(n)
    result = benchmark(check_consistency, design.kernel, design.typing, "DTD")
    assert not result.consistent


def test_combined_type_construction_is_linear(benchmark, table):
    """Proposition 3.1: |T(τn)| and its construction time are linear in the input."""
    rows = []
    for n in (2, 4, 8, 16):
        design = synthetic.bottom_up_chain(n)
        start = time.perf_counter()
        combined = build_combined_type(design.kernel, design.typing)
        elapsed = time.perf_counter() - start
        input_size = design.kernel.size + design.typing.size
        rows.append([n, input_size, combined.size, f"{1000 * elapsed:.2f} ms"])
    table("Table 2 (size of T(τn))", ["resources", "|T|+|τn|", "|T(τn)|", "construction"], rows)
    # Linearity: the ratio output/input stays bounded as n grows.
    ratios = [row[2] / row[1] for row in rows]
    assert max(ratios) < 2 * min(ratios) + 1

    design = synthetic.bottom_up_chain(8)
    benchmark(build_combined_type, design.kernel, design.typing)


def test_growth_shape_edtd_vs_dtd(benchmark, table):
    """The qualitative separation of Table 2: EDTD stays flat, DTD/SDTD grow."""
    rows = []
    timings: dict[str, list[float]] = {"EDTD": [], "DTD": [], "SDTD": []}
    for n in SIZES:
        design = synthetic.bottom_up_chain(n)
        row: list[object] = [n]
        for language in ("EDTD", "SDTD", "DTD"):
            start = time.perf_counter()
            check_consistency(design.kernel, design.typing, language)
            elapsed = time.perf_counter() - start
            timings[language].append(elapsed)
            row.append(f"{1000 * elapsed:.2f} ms")
        rows.append(row)
    table("Table 2 (cons[S] running time)", ["resources", "EDTD", "SDTD", "DTD"], rows)
    # The EDTD column is the cheapest at the largest size (constant-time row of Table 2).
    assert timings["EDTD"][-1] <= timings["DTD"][-1]
    assert timings["EDTD"][-1] <= timings["SDTD"][-1]
    design = synthetic.bottom_up_chain(SIZES[-1])
    benchmark(check_consistency, design.kernel, design.typing, "EDTD")
