"""Figure 6 -- the design <τ'', T1>: no perfect typing, exactly two maximal local typings.

τ'' interleaves the two nationalIndex formats and the kernel
``T1 = eurostat(f1, nationalIndex(f2), f3)`` fixes one nationalIndex element
between the docking points.  The paper reports that this design has no
perfect typing and exactly the two maximal local typings shown in Section 1;
the benchmark recomputes them through the EDTD machinery (normalisation, κ
assignments, box designs) and checks both the count and the shapes.
"""

from __future__ import annotations

from repro.automata.equivalence import equivalent
from repro.automata.regex import regex_to_nfa
from repro.core.existence import find_maximal_local_typings, find_perfect_typing
from repro.core.locality import is_maximal_local, root_content_of
from repro.workloads import eurostat


def test_no_perfect_typing(benchmark):
    design = eurostat.figure6_design()
    assert benchmark(find_perfect_typing, design) is None


def test_exactly_two_maximal_local_typings(benchmark):
    design = eurostat.figure6_design()
    typings = benchmark(find_maximal_local_typings, design)
    assert len(typings) == 2
    for typing in typings:
        assert is_maximal_local(design, typing)


def test_the_two_typings_match_the_paper(benchmark, table):
    design = eurostat.figure6_design()
    typings = find_maximal_local_typings(design)
    rows = []
    seen = set()
    for index, typing in enumerate(typings, start=1):
        f2 = root_content_of(typing["f2"])
        if equivalent(f2, regex_to_nfa("country, Good, index", names=True)):
            seen.add("τ''_.1 (kernel nationalIndex uses the index format)")
        if equivalent(f2, regex_to_nfa("country, Good, value, year", names=True)):
            seen.add("τ''_.2 (kernel nationalIndex uses the value/year format)")
        for function in design.kernel.functions:
            schema = typing[function]
            rows.append([f"#{index}", function, f"{schema.start} -> {schema.content(schema.start)}"])
    table("Figure 6 (the two maximal local typings)", ["typing", "resource", "root rule"], rows)
    assert len(seen) == 2
    benchmark(find_maximal_local_typings, design)
