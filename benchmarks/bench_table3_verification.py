"""Table 3 (rows A-C) -- verifying a given typing: loc[S], ml[S], perf[S].

The paper separates the nFA-DTD / nFA-SDTD column (PSPACE) from the
nFA-EDTD column (EXPTIME-complete for ``loc``).  The benchmark verifies
typings of growing designs and checks the shape: for the same kernel, the
EDTD verification (which runs through tree-automaton equivalence and the
normalisation machinery) is more expensive than the DTD verification (which
reduces to word problems per kernel node).
"""

from __future__ import annotations

import time

import pytest

from repro.core.existence import find_local_typing, find_perfect_typing
from repro.core.locality import is_local, is_maximal_local, is_perfect
from repro.workloads import eurostat, synthetic

DTD_SIZES = (2, 3, 4)


@pytest.mark.parametrize("k", DTD_SIZES)
def test_loc_verification_dtd(benchmark, k):
    design = synthetic.separable_topdown_design(k)
    typing = find_perfect_typing(design)
    assert typing is not None
    assert benchmark(is_local, design, typing)


@pytest.mark.parametrize("k", DTD_SIZES)
def test_ml_verification_dtd(benchmark, k):
    design = synthetic.separable_topdown_design(k)
    typing = find_perfect_typing(design)
    assert benchmark(is_maximal_local, design, typing)


@pytest.mark.parametrize("k", DTD_SIZES)
def test_perf_verification_dtd(benchmark, k):
    design = synthetic.separable_topdown_design(k)
    typing = find_perfect_typing(design)
    assert benchmark(is_perfect, design, typing)


@pytest.mark.parametrize("k", (1, 2, 3))
def test_loc_verification_edtd(benchmark, k):
    design = synthetic.edtd_topdown_design(k)
    typing = find_local_typing(design)
    assert typing is not None
    assert benchmark(is_local, design, typing)


def test_eurostat_verification(benchmark):
    design = eurostat.top_down_design(countries=2)
    typing = eurostat.figure4_typing(countries=2)
    assert benchmark(is_perfect, design, typing)


def test_dtd_vs_edtd_verification_shape(benchmark, table):
    """Table 3's column separation: EDTD verification costs more than DTD verification.

    Both designs share the kernel ``s0(f1 b(f2) f3)``; the EDTD target keeps
    ``k`` disjoint specialisations of ``b`` apart while the DTD target is its
    element-name projection (the DTD closure), so the only difference is the
    schema language the verification has to reason in.
    """
    from repro.core.design import TopDownDesign
    from repro.schemas.closures import dtd_closure

    k = 5
    edtd_design = synthetic.edtd_topdown_design(k)
    edtd_typing = find_local_typing(edtd_design)
    dtd_design = TopDownDesign(dtd_closure(edtd_design.target), edtd_design.kernel)
    dtd_typing = find_local_typing(dtd_design)
    assert edtd_typing is not None and dtd_typing is not None

    def measure(function, *args) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            function(*args)
            best = min(best, time.perf_counter() - start)
        return best

    dtd_time = measure(is_local, dtd_design, dtd_typing)
    edtd_time = measure(is_local, edtd_design, edtd_typing)

    table(
        "Table 3 (loc verification: nFA-DTD vs nFA-EDTD, same kernel)",
        ["design", "loc[S] time"],
        [
            [f"nFA-DTD (projection, {k} contents)", f"{1000 * dtd_time:.2f} ms"],
            [f"nFA-EDTD ({k} specialisations)", f"{1000 * edtd_time:.2f} ms"],
        ],
    )
    assert edtd_time > dtd_time
    benchmark(is_local, edtd_design, edtd_typing)
